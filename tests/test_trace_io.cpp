#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include <unistd.h>

namespace mobcache {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-process dir: under `ctest -j` every test case is a separate
    // process, and a shared fixed path would let one TearDown remove_all
    // race another process's writes.
    dir_ = std::filesystem::temp_directory_path() /
           ("mobcache_trace_io_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const char* name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

Trace sample_trace() {
  Trace t("roundtrip");
  for (int i = 0; i < 100; ++i) {
    Access a;
    const bool kernel = i % 3 == 0;
    a.addr = (kernel ? kKernelSpaceBase : 0) + static_cast<Addr>(i) * 64;
    a.type = static_cast<AccessType>(i % 3);
    a.mode = kernel ? Mode::Kernel : Mode::User;
    a.thread = static_cast<std::uint16_t>(i % 4);
    t.push(a);
  }
  return t;
}

TEST_F(TraceIoTest, RoundtripPreservesEverything) {
  const Trace original = sample_trace();
  ASSERT_TRUE(write_trace(original, path("a.mct")));

  const auto loaded = read_trace(path("a.mct"));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->name(), "roundtrip");
  ASSERT_EQ(loaded->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*loaded)[i].addr, original[i].addr);
    EXPECT_EQ((*loaded)[i].type, original[i].type);
    EXPECT_EQ((*loaded)[i].mode, original[i].mode);
    EXPECT_EQ((*loaded)[i].thread, original[i].thread);
  }
}

TEST_F(TraceIoTest, EmptyTraceRoundtrips) {
  Trace t("empty");
  ASSERT_TRUE(write_trace(t, path("e.mct")));
  const auto loaded = read_trace(path("e.mct"));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->empty());
  EXPECT_EQ(loaded->name(), "empty");
}

TEST_F(TraceIoTest, MissingFileIsNullopt) {
  EXPECT_FALSE(read_trace(path("does_not_exist.mct")).has_value());
}

TEST_F(TraceIoTest, BadMagicRejected) {
  std::ofstream f(path("bad.mct"), std::ios::binary);
  const char garbage[64] = "this is not a mobcache trace file at all";
  f.write(garbage, sizeof garbage);
  f.close();
  EXPECT_FALSE(read_trace(path("bad.mct")).has_value());
}

TEST_F(TraceIoTest, TruncatedFileRejected) {
  ASSERT_TRUE(write_trace(sample_trace(), path("t.mct")));
  const auto full = std::filesystem::file_size(path("t.mct"));
  std::filesystem::resize_file(path("t.mct"), full - 10);
  EXPECT_FALSE(read_trace(path("t.mct")).has_value());
}

TEST_F(TraceIoTest, ModeInconsistentFileRejected) {
  // A record claiming kernel mode at a user address must not load: such a
  // trace would silently break every partitioned design.
  Trace t("bad-mode");
  Access a;
  a.addr = 0x1000;  // user half
  a.mode = Mode::Kernel;
  t.push(a);
  ASSERT_TRUE(write_trace(t, path("m.mct")));
  EXPECT_FALSE(read_trace(path("m.mct")).has_value());
}

TEST_F(TraceIoTest, WriteToUnwritablePathFails) {
  EXPECT_FALSE(write_trace(sample_trace(), "/nonexistent_dir_xyz/t.mct"));
}

// ---- typed-diagnostic API ------------------------------------------------

/// Overwrites `len` bytes at `off` in an existing file.
void patch_file(const std::string& path, std::uint64_t off, const void* bytes,
                std::size_t len) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f);
  f.seekp(static_cast<std::streamoff>(off));
  f.write(static_cast<const char*>(bytes), static_cast<std::streamsize>(len));
}

TEST_F(TraceIoTest, DetailedMissingFile) {
  const TraceReadResult r = read_trace_detailed(path("nope.mct"));
  EXPECT_EQ(r.status, TraceIoStatus::FileNotFound);
  EXPECT_FALSE(r.trace.has_value());
  EXPECT_FALSE(r.detail.empty());
}

TEST_F(TraceIoTest, DetailedZeroLengthFile) {
  std::ofstream(path("zero.mct"), std::ios::binary).close();
  const TraceReadResult r = read_trace_detailed(path("zero.mct"));
  EXPECT_EQ(r.status, TraceIoStatus::CorruptHeader);
  EXPECT_FALSE(r.ok());
}

TEST_F(TraceIoTest, DetailedBadMagic) {
  std::ofstream f(path("bad.mct"), std::ios::binary);
  const char garbage[64] = "this is not a mobcache trace file at all";
  f.write(garbage, sizeof garbage);
  f.close();
  EXPECT_EQ(read_trace_detailed(path("bad.mct")).status,
            TraceIoStatus::BadMagic);
}

TEST_F(TraceIoTest, DetailedBogusCountRejectedBeforeAllocation) {
  ASSERT_TRUE(write_trace(sample_trace(), path("c.mct")));
  // count lives after magic(8) + name_len(4) + name("roundtrip" = 9).
  const std::uint64_t huge = 1ull << 40;
  patch_file(path("c.mct"), 8 + 4 + 9, &huge, sizeof huge);
  const TraceReadResult r = read_trace_detailed(path("c.mct"));
  EXPECT_EQ(r.status, TraceIoStatus::TruncatedRecords);
  EXPECT_NE(r.detail.find("promises"), std::string::npos);
}

TEST_F(TraceIoTest, DetailedTruncatedTail) {
  ASSERT_TRUE(write_trace(sample_trace(), path("t2.mct")));
  const auto full = std::filesystem::file_size(path("t2.mct"));
  std::filesystem::resize_file(path("t2.mct"), full - 10);
  EXPECT_EQ(read_trace_detailed(path("t2.mct")).status,
            TraceIoStatus::TruncatedRecords);
}

TEST_F(TraceIoTest, DetailedBadRecordFields) {
  ASSERT_TRUE(write_trace(sample_trace(), path("r.mct")));
  // Record 0 starts at header end (8 + 4 + 9 + 8); its type byte is 16 in.
  const std::uint8_t bogus = 9;
  patch_file(path("r.mct"), 8 + 4 + 9 + 8 + 16, &bogus, sizeof bogus);
  EXPECT_EQ(read_trace_detailed(path("r.mct")).status,
            TraceIoStatus::BadRecord);
}

TEST_F(TraceIoTest, DetailedInconsistentModes) {
  Trace t("bm");
  Access a;
  a.addr = 0x1000;  // user half
  a.mode = Mode::Kernel;
  t.push(a);
  ASSERT_TRUE(write_trace(t, path("m2.mct")));
  EXPECT_EQ(read_trace_detailed(path("m2.mct")).status,
            TraceIoStatus::InconsistentModes);
}

TEST_F(TraceIoTest, DetailedOkCarriesTrace) {
  const Trace original = sample_trace();
  ASSERT_TRUE(write_trace(original, path("ok.mct")));
  const TraceReadResult r = read_trace_detailed(path("ok.mct"));
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.trace.has_value());
  EXPECT_EQ(r.trace->size(), original.size());
  EXPECT_EQ(to_string(r.status), std::string("ok"));
}

}  // namespace
}  // namespace mobcache
