#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace mobcache {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "mobcache_trace_io";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const char* name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

Trace sample_trace() {
  Trace t("roundtrip");
  for (int i = 0; i < 100; ++i) {
    Access a;
    const bool kernel = i % 3 == 0;
    a.addr = (kernel ? kKernelSpaceBase : 0) + static_cast<Addr>(i) * 64;
    a.type = static_cast<AccessType>(i % 3);
    a.mode = kernel ? Mode::Kernel : Mode::User;
    a.thread = static_cast<std::uint16_t>(i % 4);
    t.push(a);
  }
  return t;
}

TEST_F(TraceIoTest, RoundtripPreservesEverything) {
  const Trace original = sample_trace();
  ASSERT_TRUE(write_trace(original, path("a.mct")));

  const auto loaded = read_trace(path("a.mct"));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->name(), "roundtrip");
  ASSERT_EQ(loaded->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*loaded)[i].addr, original[i].addr);
    EXPECT_EQ((*loaded)[i].type, original[i].type);
    EXPECT_EQ((*loaded)[i].mode, original[i].mode);
    EXPECT_EQ((*loaded)[i].thread, original[i].thread);
  }
}

TEST_F(TraceIoTest, EmptyTraceRoundtrips) {
  Trace t("empty");
  ASSERT_TRUE(write_trace(t, path("e.mct")));
  const auto loaded = read_trace(path("e.mct"));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->empty());
  EXPECT_EQ(loaded->name(), "empty");
}

TEST_F(TraceIoTest, MissingFileIsNullopt) {
  EXPECT_FALSE(read_trace(path("does_not_exist.mct")).has_value());
}

TEST_F(TraceIoTest, BadMagicRejected) {
  std::ofstream f(path("bad.mct"), std::ios::binary);
  const char garbage[64] = "this is not a mobcache trace file at all";
  f.write(garbage, sizeof garbage);
  f.close();
  EXPECT_FALSE(read_trace(path("bad.mct")).has_value());
}

TEST_F(TraceIoTest, TruncatedFileRejected) {
  ASSERT_TRUE(write_trace(sample_trace(), path("t.mct")));
  const auto full = std::filesystem::file_size(path("t.mct"));
  std::filesystem::resize_file(path("t.mct"), full - 10);
  EXPECT_FALSE(read_trace(path("t.mct")).has_value());
}

TEST_F(TraceIoTest, ModeInconsistentFileRejected) {
  // A record claiming kernel mode at a user address must not load: such a
  // trace would silently break every partitioned design.
  Trace t("bad-mode");
  Access a;
  a.addr = 0x1000;  // user half
  a.mode = Mode::Kernel;
  t.push(a);
  ASSERT_TRUE(write_trace(t, path("m.mct")));
  EXPECT_FALSE(read_trace(path("m.mct")).has_value());
}

TEST_F(TraceIoTest, WriteToUnwritablePathFails) {
  EXPECT_FALSE(write_trace(sample_trace(), "/nonexistent_dir_xyz/t.mct"));
}

}  // namespace
}  // namespace mobcache
