#include "core/shared_l2.hpp"

#include <gtest/gtest.h>

namespace mobcache {
namespace {

SharedL2Config sram_cfg(std::uint64_t size = 256ull << 10) {
  SharedL2Config c;
  c.cache.name = "L2";
  c.cache.size_bytes = size;
  c.cache.assoc = 8;
  c.tech = TechKind::Sram;
  return c;
}

SharedL2Config stt_cfg(RetentionClass r) {
  SharedL2Config c = sram_cfg();
  c.tech = TechKind::SttRam;
  c.retention = r;
  return c;
}

TEST(SharedL2, MissChargesDramAndFill) {
  SharedL2 l2(sram_cfg());
  const L2Result r = l2.access(0x1000, AccessType::Read, Mode::User, 0);
  EXPECT_FALSE(r.hit);
  EXPECT_EQ(r.latency, l2.tech().read_latency +
                           tech_constants::kDramVisibleStall);
  const EnergyBreakdown& e = l2.energy();
  EXPECT_GT(e.read_nj, 0.0);
  EXPECT_GT(e.write_nj, 0.0);  // fill
  EXPECT_DOUBLE_EQ(e.dram_nj, tech_constants::kDramAccessNj);
}

TEST(SharedL2, HitChargesReadOnly) {
  SharedL2 l2(sram_cfg());
  l2.access(0x1000, AccessType::Read, Mode::User, 0);
  const double dram_before = l2.energy().dram_nj;
  const L2Result r = l2.access(0x1000, AccessType::Read, Mode::User, 100);
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.latency, l2.tech().read_latency);
  EXPECT_DOUBLE_EQ(l2.energy().dram_nj, dram_before);
}

TEST(SharedL2, StoreHitIsPosted) {
  SharedL2 l2(sram_cfg());
  l2.access(0x1000, AccessType::Read, Mode::User, 0);
  const L2Result r = l2.access(0x1000, AccessType::Write, Mode::User, 100);
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.latency, 0u);
}

TEST(SharedL2, SttWriteOccupiesBank) {
  SharedL2 l2(stt_cfg(RetentionClass::Hi));
  l2.access(0x1000, AccessType::Read, Mode::User, 0);
  // A store hit at t=100 busies the bank for write_latency cycles; a read
  // to the SAME bank right after must absorb the remainder.
  l2.access(0x1000, AccessType::Write, Mode::User, 100);
  const L2Result r = l2.access(0x1000, AccessType::Read, Mode::User, 101);
  EXPECT_TRUE(r.hit);
  const Cycle wl = l2.tech().write_latency;
  EXPECT_EQ(r.latency, (100 + wl - 101) + l2.tech().read_latency);
}

TEST(SharedL2, DifferentBankUnaffectedByWrite) {
  SharedL2 l2(stt_cfg(RetentionClass::Hi));
  // Lines 0 and 1 land in different banks (bank = line index & 3).
  l2.access(0, AccessType::Read, Mode::User, 0);
  l2.access(kLineSize, AccessType::Read, Mode::User, 10);
  l2.access(0, AccessType::Write, Mode::User, 100);
  const L2Result r = l2.access(kLineSize, AccessType::Read, Mode::User, 101);
  EXPECT_EQ(r.latency, l2.tech().read_latency);
}

TEST(SharedL2, WritebackAllocates) {
  SharedL2 l2(sram_cfg());
  l2.writeback(0x2000, Mode::Kernel, 0);
  const L2Result r = l2.access(0x2000, AccessType::Read, Mode::Kernel, 10);
  EXPECT_TRUE(r.hit);
}

TEST(SharedL2, FinalizeAddsLeakageOnce) {
  SharedL2 l2(sram_cfg());
  l2.finalize(1'000'000);
  const double leak = l2.energy().leakage_nj;
  EXPECT_NEAR(leak, l2.tech().leakage_nj(1'000'000), 1e-6);
  l2.finalize(2'000'000);  // idempotent
  EXPECT_DOUBLE_EQ(l2.energy().leakage_nj, leak);
}

TEST(SharedL2, FinalizeFlushesResidualDirty) {
  SharedL2 l2(sram_cfg());
  l2.access(0x1000, AccessType::Write, Mode::User, 0);
  const double dram_before = l2.energy().dram_nj;
  l2.finalize(100);
  EXPECT_NEAR(l2.energy().dram_nj - dram_before,
              tech_constants::kDramAccessNj, 1e-9);
}

TEST(SharedL2, SttLowRetentionRefreshesOrExpires) {
  SharedL2Config c = stt_cfg(RetentionClass::Lo);
  c.refresh = RefreshPolicy::ScrubDirty;
  SharedL2 l2(c);
  l2.access(0x1000, AccessType::Write, Mode::User, 0);
  // Walk time far past several retention periods with unrelated traffic so
  // the controller ticks.
  const Cycle ret = tech_constants::kRetentionLoCycles;
  for (int i = 1; i <= 6; ++i)
    l2.access(0x8000 + i * 0x40, AccessType::Read, Mode::User,
              static_cast<Cycle>(i) * ret / 2);
  l2.finalize(4 * ret);
  EXPECT_GT(l2.aggregate_stats().refreshes, 0u)
      << "dirty block must have been scrubbed at least once";
}

TEST(SharedL2, CapacityAndDescribe) {
  SharedL2 l2(sram_cfg(512ull << 10));
  EXPECT_EQ(l2.capacity_bytes(), 512ull << 10);
  EXPECT_EQ(l2.avg_enabled_bytes(), 512.0 * 1024);
  EXPECT_NE(l2.describe().find("512KB"), std::string::npos);
  EXPECT_NE(l2.describe().find("SRAM"), std::string::npos);

  SharedL2 stt(stt_cfg(RetentionClass::Mid));
  EXPECT_NE(stt.describe().find("STT-RAM"), std::string::npos);
  EXPECT_NE(stt.describe().find("MID"), std::string::npos);
}

TEST(SharedL2, RefreshIntervalClampedToHalfRetention) {
  SharedL2Config c = stt_cfg(RetentionClass::Lo);
  c.refresh_check_interval = 1'000'000'000;  // far beyond t_ret
  SharedL2 l2(c);
  // A dirty block written at t=0 must still be alive at 0.9·t_ret because
  // the clamped controller scrubbed it in time.
  l2.access(0x1000, AccessType::Write, Mode::User, 0);
  const Cycle ret = tech_constants::kRetentionLoCycles;
  l2.access(0x2000, AccessType::Read, Mode::User, ret / 2);  // triggers tick
  EXPECT_TRUE(l2.array().contains(0x1000, ret - ret / 10));
}

}  // namespace
}  // namespace mobcache
