#include "exp/runner.hpp"

#include <gtest/gtest.h>

#include "exp/report.hpp"

namespace mobcache {
namespace {

TEST(Runner, GeneratesOneTracePerApp) {
  ExperimentRunner r({AppId::Launcher, AppId::AudioPlayer}, 20'000, 1);
  ASSERT_EQ(r.traces().size(), 2u);
  EXPECT_EQ(r.trace(0).name(), "launcher");
  EXPECT_GE(r.trace(0).size(), 20'000u);
}

TEST(Runner, RunSchemeProducesAlignedResults) {
  ExperimentRunner r({AppId::Launcher, AppId::Email}, 20'000, 1);
  const SchemeSuiteResult s = r.run_scheme(SchemeKind::BaselineSram);
  ASSERT_EQ(s.per_workload.size(), 2u);
  EXPECT_EQ(s.per_workload[0].workload, "launcher");
  EXPECT_EQ(s.per_workload[1].workload, "email");
  EXPECT_EQ(s.name, "Base-SRAM-2MB");
  EXPECT_GT(s.avg_miss_rate, 0.0);
}

TEST(Runner, RunCustomUsesBuilderPerWorkload) {
  ExperimentRunner r({AppId::Launcher, AppId::Email}, 20'000, 1);
  int builds = 0;
  const SchemeSuiteResult s = r.run_custom("probe", [&] {
    ++builds;
    return build_scheme(SchemeKind::BaselineSram);
  });
  EXPECT_EQ(builds, 2);
  EXPECT_EQ(s.name, "probe");
}

TEST(Runner, NormalizeBaselineIsUnity) {
  ExperimentRunner r({AppId::Launcher}, 30'000, 1);
  std::vector<SchemeSuiteResult> v;
  v.push_back(r.run_scheme(SchemeKind::BaselineSram));
  v.push_back(r.run_scheme(SchemeKind::ShrunkSram));
  ExperimentRunner::normalize(v);
  EXPECT_NEAR(v[0].norm_cache_energy, 1.0, 1e-12);
  EXPECT_NEAR(v[0].norm_exec_time, 1.0, 1e-12);
  // The shrunk shared cache must save energy and cost time.
  EXPECT_LT(v[1].norm_cache_energy, 1.0);
  EXPECT_GT(v[1].norm_exec_time, 1.0);
}

TEST(Runner, NormalizeCrossWorkloadGeomean) {
  // Hand-build results with known ratios: 0.5 and 2.0 → geomean 1.0.
  SchemeSuiteResult base;
  base.per_workload.resize(2);
  base.per_workload[0].l2_energy.leakage_nj = 100;
  base.per_workload[0].cycles = 1000;
  base.per_workload[1].l2_energy.leakage_nj = 100;
  base.per_workload[1].cycles = 1000;

  SchemeSuiteResult other = base;
  other.per_workload[0].l2_energy.leakage_nj = 50;
  other.per_workload[1].l2_energy.leakage_nj = 200;
  other.per_workload[0].cycles = 500;
  other.per_workload[1].cycles = 2000;

  std::vector<SchemeSuiteResult> v{base, other};
  ExperimentRunner::normalize(v);
  EXPECT_NEAR(v[1].norm_cache_energy, 1.0, 1e-9);
  EXPECT_NEAR(v[1].norm_exec_time, 1.0, 1e-9);
}

TEST(Runner, SameSeedSameResults) {
  ExperimentRunner a({AppId::Game}, 30'000, 5);
  ExperimentRunner b({AppId::Game}, 30'000, 5);
  const auto ra = a.run_scheme(SchemeKind::BaselineSram);
  const auto rb = b.run_scheme(SchemeKind::BaselineSram);
  EXPECT_EQ(ra.per_workload[0].cycles, rb.per_workload[0].cycles);
  EXPECT_DOUBLE_EQ(ra.per_workload[0].l2_energy.total_nj(),
                   rb.per_workload[0].l2_energy.total_nj());
}

TEST(Report, HeadlineTableShape) {
  ExperimentRunner r({AppId::Launcher}, 20'000, 1);
  std::vector<SchemeSuiteResult> v;
  v.push_back(r.run_scheme(SchemeKind::BaselineSram));
  ExperimentRunner::normalize(v);
  const TablePrinter t = headline_table(v);
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_EQ(t.column_count(), 8u);
  EXPECT_NE(t.render().find("Base-SRAM-2MB"), std::string::npos);
}

TEST(Report, ResultsPathUsesEnvOverride) {
  setenv("MOBCACHE_RESULTS_DIR", "/tmp/mobcache_results_test", 1);
  EXPECT_EQ(results_path("x.csv"), "/tmp/mobcache_results_test/x.csv");
  unsetenv("MOBCACHE_RESULTS_DIR");
  EXPECT_EQ(results_path("x.csv"), "results/x.csv");
}

}  // namespace
}  // namespace mobcache
