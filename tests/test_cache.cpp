#include "cache/set_assoc_cache.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mobcache {
namespace {

CacheConfig small_config(std::uint32_t assoc = 4,
                         std::uint64_t size = 16ull << 10) {
  CacheConfig c;
  c.name = "test";
  c.size_bytes = size;
  c.assoc = assoc;
  return c;
}

Addr user_line(std::uint64_t i) { return i * kLineSize; }

TEST(CacheConfig, GeometryMath) {
  CacheConfig c = small_config(4, 16ull << 10);
  EXPECT_EQ(c.num_sets(), 64u);
  EXPECT_EQ(c.num_lines(), 256u);
  EXPECT_NO_THROW(c.validate());
}

TEST(CacheConfig, RejectsBadGeometry) {
  CacheConfig c = small_config();
  c.size_bytes = 1000;  // not a multiple of line*assoc
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = small_config(0);
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = small_config(65);
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = small_config(3);  // 16KB/(64*3) is not integral/power-of-two sets
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = small_config(4);
  c.line_size = 48;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  // PLRU needs power-of-two associativity: build a 12-way geometry with a
  // power-of-two set count (12 ways × 64 B × 64 sets = 48 KB).
  c = small_config(12, 48ull << 10);
  EXPECT_NO_THROW(c.validate());
  c.repl = ReplKind::Plru;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(WayMask, Helpers) {
  EXPECT_EQ(full_way_mask(4), 0b1111ull);
  EXPECT_EQ(full_way_mask(64), ~0ull);
  EXPECT_EQ(way_range_mask(2, 3), 0b11100ull);
  EXPECT_EQ(way_range_mask(0, 0), 0ull);
}

TEST(Cache, ColdMissThenHit) {
  SetAssocCache c(small_config());
  auto r1 = c.access(user_line(1), AccessType::Read, Mode::User, 10);
  EXPECT_FALSE(r1.hit);
  EXPECT_TRUE(r1.filled);
  EXPECT_FALSE(r1.evicted_valid);

  auto r2 = c.access(user_line(1), AccessType::Read, Mode::User, 20);
  EXPECT_TRUE(r2.hit);
  EXPECT_EQ(c.stats().total_accesses(), 2u);
  EXPECT_EQ(c.stats().total_hits(), 1u);
  EXPECT_EQ(c.stats().fills, 1u);
}

TEST(Cache, SetConflictEvictsLru) {
  SetAssocCache c(small_config(2, 8ull << 10));  // 64 sets, 2 ways
  const std::uint32_t sets = c.num_sets();
  // Three lines mapping to set 0.
  const Addr a = user_line(0);
  const Addr b = user_line(sets);
  const Addr d = user_line(2 * sets);
  c.access(a, AccessType::Read, Mode::User, 1);
  c.access(b, AccessType::Read, Mode::User, 2);
  auto r = c.access(d, AccessType::Read, Mode::User, 3);
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.evicted_valid);
  EXPECT_EQ(r.victim_line, a);  // LRU
  EXPECT_FALSE(c.contains(a, 4));
  EXPECT_TRUE(c.contains(b, 4));
  EXPECT_TRUE(c.contains(d, 4));
}

TEST(Cache, DirtyVictimReportsWriteback) {
  SetAssocCache c(small_config(1, 4ull << 10));  // direct-mapped, 64 sets
  const std::uint32_t sets = c.num_sets();
  c.access(user_line(0), AccessType::Write, Mode::User, 1);
  auto r = c.access(user_line(sets), AccessType::Read, Mode::User, 2);
  EXPECT_TRUE(r.evicted_valid);
  EXPECT_TRUE(r.victim_dirty);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, StoreHitMarksDirty) {
  SetAssocCache c(small_config());
  c.access(user_line(3), AccessType::Read, Mode::User, 1);
  EXPECT_FALSE(c.block(c.set_index(user_line(3)), 0).dirty);
  c.access(user_line(3), AccessType::Write, Mode::User, 2);
  EXPECT_EQ(c.stats().store_hits, 1u);
  bool found_dirty = false;
  c.for_each_valid_block([&](std::uint32_t, std::uint32_t,
                             const BlockMeta& b) {
    if (b.line == user_line(3)) found_dirty = b.dirty;
  });
  EXPECT_TRUE(found_dirty);
}

TEST(Cache, CrossModeEvictionCounted) {
  SetAssocCache c(small_config(1, 4ull << 10));
  const std::uint32_t sets = c.num_sets();
  // Kernel line and user line that collide in set 0.
  const Addr ku = kKernelSpaceBase;  // set 0
  c.access(ku, AccessType::Read, Mode::Kernel, 1);
  auto r = c.access(user_line(sets), AccessType::Read, Mode::User, 2);
  EXPECT_TRUE(r.evicted_valid);
  EXPECT_EQ(r.victim_owner, Mode::Kernel);
  EXPECT_EQ(c.stats().cross_mode_evictions, 1u);
}

TEST(Cache, WayMaskConfinesFillsAndLookups) {
  SetAssocCache c(small_config(4));
  const WayMask low = way_range_mask(0, 2);
  const WayMask high = way_range_mask(2, 2);

  c.access(user_line(1), AccessType::Read, Mode::User, 1, low);
  // The block is invisible through the disjoint mask.
  auto r = c.access(user_line(1), AccessType::Read, Mode::Kernel, 2, high);
  EXPECT_FALSE(r.hit);
  // And visible through its own mask.
  auto r2 = c.access(user_line(1), AccessType::Read, Mode::User, 3, low);
  EXPECT_TRUE(r2.hit);
  EXPECT_LT(r2.way, 2u);

  // Fills never land outside the mask.
  for (std::uint64_t i = 0; i < 16; ++i) {
    auto rr = c.access(user_line(i * c.num_sets()), AccessType::Read,
                       Mode::User, 10 + i, low);
    EXPECT_LT(rr.way, 2u);
  }
}

TEST(Cache, InvalidateWaysFlushesAndCountsDirty) {
  SetAssocCache c(small_config(4));
  c.access(user_line(0), AccessType::Write, Mode::User, 1);  // way 0, dirty
  c.access(user_line(c.num_sets()), AccessType::Read, Mode::User, 2);  // way 1
  const std::uint64_t dirty = c.invalidate_ways(way_range_mask(0, 2));
  EXPECT_EQ(dirty, 1u);
  EXPECT_EQ(c.occupancy(full_way_mask(4), 3), 0u);
}

TEST(Cache, OccupancyPerWayRange) {
  SetAssocCache c(small_config(4));
  c.access(user_line(0), AccessType::Read, Mode::User, 1, way_range_mask(0, 2));
  c.access(kKernelSpaceBase, AccessType::Write, Mode::Kernel, 2,
           way_range_mask(2, 2));
  EXPECT_EQ(c.occupancy(way_range_mask(0, 2), 3), 1u);
  EXPECT_EQ(c.occupancy(way_range_mask(2, 2), 3), 1u);
  EXPECT_EQ(c.dirty_occupancy(way_range_mask(2, 2), 3), 1u);
  EXPECT_EQ(c.dirty_occupancy(way_range_mask(0, 2), 3), 0u);
}

TEST(Cache, EvictionObserverSeesLifetimes) {
  SetAssocCache c(small_config(1, 4ull << 10));
  std::vector<EvictionEvent> events;
  c.set_eviction_observer([&](const EvictionEvent& e) { events.push_back(e); });

  c.access(user_line(0), AccessType::Write, Mode::User, 100);
  c.access(user_line(0), AccessType::Read, Mode::User, 150);
  c.access(user_line(c.num_sets()), AccessType::Read, Mode::User, 200);

  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].line, user_line(0));
  EXPECT_EQ(events[0].fill_cycle, 100u);
  EXPECT_EQ(events[0].last_access, 150u);
  EXPECT_EQ(events[0].evict_cycle, 200u);
  EXPECT_TRUE(events[0].dirty);
  EXPECT_EQ(events[0].access_count, 2u);
  EXPECT_EQ(events[0].owner, Mode::User);
}

TEST(Cache, StatsPerModeAndReset) {
  SetAssocCache c(small_config());
  c.access(user_line(0), AccessType::Read, Mode::User, 1);
  c.access(kKernelSpaceBase, AccessType::Read, Mode::Kernel, 2);
  c.access(kKernelSpaceBase, AccessType::Read, Mode::Kernel, 3);
  EXPECT_EQ(c.stats().accesses[0], 1u);
  EXPECT_EQ(c.stats().accesses[1], 2u);
  EXPECT_DOUBLE_EQ(c.stats().kernel_access_fraction(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(c.stats().miss_rate(Mode::Kernel), 0.5);
  c.reset_stats();
  EXPECT_EQ(c.stats().total_accesses(), 0u);
}

TEST(Cache, XorIndexingStillFindsBlocks) {
  CacheConfig cfg = small_config();
  cfg.xor_index = true;
  SetAssocCache c(cfg);
  // Functional equivalence: whatever the index hash, a filled line is found
  // again and distinct lines stay distinct.
  for (std::uint64_t i = 0; i < 200; ++i)
    c.access(user_line(i * 17), AccessType::Read, Mode::User, i);
  for (std::uint64_t i = 150; i < 200; ++i) {
    EXPECT_TRUE(c.contains(user_line(i * 17), 1000)) << i;
  }
}

TEST(Cache, XorIndexingBreaksPowerOfTwoConflicts) {
  // Lines exactly num_sets apart all collide under modulo indexing but
  // spread out under xor folding.
  CacheConfig plain = small_config(2, 8ull << 10);
  CacheConfig hashed = plain;
  hashed.xor_index = true;
  SetAssocCache cp(plain);
  SetAssocCache ch(hashed);
  const std::uint64_t sets = cp.num_sets();

  std::uint64_t plain_distinct = 0;
  std::uint64_t hashed_distinct = 0;
  std::uint32_t prev_p = cp.set_index(0);
  std::uint32_t prev_h = ch.set_index(0);
  for (std::uint64_t i = 1; i < 16; ++i) {
    const Addr line = user_line(i * sets);
    plain_distinct += cp.set_index(line) != prev_p;
    hashed_distinct += ch.set_index(line) != prev_h;
    prev_p = cp.set_index(line);
    prev_h = ch.set_index(line);
  }
  EXPECT_EQ(plain_distinct, 0u) << "modulo maps the stride to one set";
  EXPECT_GT(hashed_distinct, 8u) << "xor folding must spread the stride";
}

TEST(Cache, KernelAddressesMapAcrossSets) {
  SetAssocCache c(small_config());
  // Kernel high bits must not alias everything into one set.
  const std::uint32_t s1 = c.set_index(kKernelSpaceBase);
  const std::uint32_t s2 = c.set_index(kKernelSpaceBase + kLineSize);
  EXPECT_NE(s1, s2);
}

}  // namespace
}  // namespace mobcache
