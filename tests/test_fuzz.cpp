/// \file test_fuzz.cpp
/// Randomized round-trip and robustness sweeps: components must survive
/// arbitrary (valid) inputs, and the serializers must be exact inverses on
/// random data — not just on the friendly traces the generator emits.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "cache/bank_model.hpp"
#include "common/rng.hpp"
#include "trace/trace_compress.hpp"
#include "trace/trace_io.hpp"
#include "workload/scenario.hpp"

namespace mobcache {
namespace {

Trace random_trace(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  Trace t("fuzz-" + std::to_string(seed));
  for (std::size_t i = 0; i < n; ++i) {
    Access a;
    a.mode = rng.chance(0.5) ? Mode::Kernel : Mode::User;
    // Arbitrary addresses in the right half, arbitrary alignment.
    const Addr base = a.mode == Mode::Kernel ? kKernelSpaceBase : 0;
    a.addr = base + (rng.next_u64() & 0x0000'7fff'ffff'ffffull);
    a.type = static_cast<AccessType>(rng.below(3));
    a.thread = static_cast<std::uint16_t>(rng.below(65536));
    t.push(a);
  }
  return t;
}

class FuzzRoundtrip : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "mobcache_fuzz";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_P(FuzzRoundtrip, FlatAndCompressedAgreeOnRandomTraces) {
  const Trace t = random_trace(GetParam(), 5'000);
  const std::string flat = (dir_ / "f.mct").string();
  const std::string comp = (dir_ / "f.mctz").string();
  ASSERT_TRUE(write_trace(t, flat));
  ASSERT_TRUE(write_trace_compressed(t, comp));

  const auto a = read_trace(flat);
  const auto b = read_trace_compressed(comp);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  ASSERT_EQ(a->size(), t.size());
  ASSERT_EQ(b->size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    ASSERT_EQ((*a)[i].addr, t[i].addr) << i;
    ASSERT_EQ((*b)[i].addr, t[i].addr) << i;
    ASSERT_EQ((*b)[i].type, t[i].type) << i;
    ASSERT_EQ((*b)[i].mode, t[i].mode) << i;
    ASSERT_EQ((*b)[i].thread, t[i].thread) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzRoundtrip,
                         ::testing::Values(1, 7, 1234, 99999, 31337));

TEST(FuzzCorruption, CompressedReaderNeverCrashesOnBitFlips) {
  const auto dir = std::filesystem::temp_directory_path() / "mobcache_flip";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "t.mctz").string();
  const Trace t = random_trace(5, 2'000);
  ASSERT_TRUE(write_trace_compressed(t, path));

  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();

  Rng rng(17);
  int loaded = 0;
  for (int trial = 0; trial < 60; ++trial) {
    std::string corrupt = bytes;
    // Flip 1-4 random bits anywhere in the file.
    const int flips = 1 + static_cast<int>(rng.below(4));
    for (int f = 0; f < flips; ++f) {
      const std::size_t byte = rng.below(corrupt.size());
      corrupt[byte] = static_cast<char>(corrupt[byte] ^
                                        (1u << rng.below(8)));
    }
    const std::string cpath = (dir / "c.mctz").string();
    std::ofstream out(cpath, std::ios::binary | std::ios::trunc);
    out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
    out.close();
    // Must either load something structurally valid or reject — no crash,
    // no mode/address inconsistency.
    const auto r = read_trace_compressed(cpath);
    if (r.has_value()) {
      ++loaded;
      EXPECT_TRUE(r->modes_consistent_with_addresses());
    }
  }
  // Most random corruptions must be caught (magic/varint/consistency).
  EXPECT_LT(loaded, 45);
  std::filesystem::remove_all(dir);
}

TEST(FuzzBankModel, RandomScheduleInvariants) {
  Rng rng(23);
  BankModel b(4, 4);
  const Cycle wl = 30;
  Cycle now = 0;
  for (int i = 0; i < 20'000; ++i) {
    now += rng.below(50);
    const Addr line = rng.below(1024) * kLineSize;
    if (rng.chance(0.4)) {
      const Cycle stall = b.write_enqueue(line, now, wl);
      ASSERT_LE(stall, 4 * wl) << "write stall bounded by queue drain";
    } else {
      const Cycle stall = b.read_stall(line, now, wl);
      ASSERT_LE(stall, wl) << "reads wait at most one write";
    }
    ASSERT_LE(b.queue_depth(line, now, wl), 5u);
  }
}

TEST(FuzzScenario, RandomAppMixesStayConsistent) {
  Rng rng(29);
  for (int trial = 0; trial < 5; ++trial) {
    ScenarioConfig sc;
    const auto apps = all_apps();
    const std::size_t n = 1 + rng.below(4);
    for (std::size_t i = 0; i < n; ++i)
      sc.apps.push_back(apps[rng.below(apps.size())]);
    sc.total_accesses = 30'000 + rng.below(50'000);
    sc.slice_mean = 2'000 + rng.below(20'000);
    sc.seed = rng.next_u64();
    const Trace t = generate_scenario(sc);
    ASSERT_GE(t.size(), sc.total_accesses);
    ASSERT_TRUE(t.modes_consistent_with_addresses());
  }
}

}  // namespace
}  // namespace mobcache
