#include <gtest/gtest.h>

#include "core/scheme.hpp"
#include "energy/technology.hpp"
#include "sim/simulator.hpp"
#include "workload/suite.hpp"

namespace mobcache {
namespace {

TEST(Dvfs, LeakagePerCycleScalesWithClockPeriod) {
  const TechParams nominal = make_sram(1ull << 20);
  TechnologyConfig cfg;
  cfg.cycle_ns = 2.0;  // 0.5 GHz
  ScopedTechnology scope(cfg);
  const TechParams slow = make_sram(1ull << 20);
  EXPECT_DOUBLE_EQ(slow.leakage_mw, nominal.leakage_mw);  // power unchanged
  EXPECT_NEAR(slow.leakage_nj(1000), 2.0 * nominal.leakage_nj(1000), 1e-9);
}

TEST(Dvfs, DramStallScalesWithClock) {
  const Cycle nominal = dram_visible_stall_cycles();
  {
    TechnologyConfig cfg;
    cfg.cycle_ns = 2.0;  // slower clock → fewer cycles of waiting
    ScopedTechnology scope(cfg);
    EXPECT_EQ(dram_visible_stall_cycles(), nominal / 2);
  }
  {
    TechnologyConfig cfg;
    cfg.cycle_ns = 0.5;  // faster clock → more cycles
    ScopedTechnology scope(cfg);
    EXPECT_EQ(dram_visible_stall_cycles(), nominal * 2);
  }
  EXPECT_EQ(dram_visible_stall_cycles(), nominal);
}

TEST(Dvfs, RetentionShrinksInCyclesAtSlowerClock) {
  TechnologyConfig cfg;
  cfg.cycle_ns = 2.0;
  ScopedTechnology scope(cfg);
  const TechParams lo = make_sttram(1ull << 20, RetentionClass::Lo);
  // 10 ms of wall time is half as many 2 ns cycles.
  EXPECT_EQ(lo.retention_cycles, tech_constants::kRetentionLoCycles / 2);
  // HI stays non-volatile.
  EXPECT_EQ(make_sttram(1ull << 20, RetentionClass::Hi).retention_cycles, 0u);
}

TEST(Dvfs, SlowClockInflatesBaselineLeakageShare) {
  const Trace t = generate_app_trace(AppId::Launcher, 120'000, 5);
  const SimResult fast = simulate(t, build_scheme(SchemeKind::BaselineSram));

  TechnologyConfig cfg;
  cfg.cycle_ns = 2.0;
  ScopedTechnology scope(cfg);
  const SimResult slow = simulate(t, build_scheme(SchemeKind::BaselineSram));

  // Dynamic energy is per access and unchanged; leakage roughly doubles
  // (cycle count shifts slightly because DRAM stalls shrink in cycles).
  EXPECT_NEAR(slow.l2_energy.read_nj, fast.l2_energy.read_nj,
              fast.l2_energy.read_nj * 0.05);
  EXPECT_GT(slow.l2_energy.leakage_nj, 1.7 * fast.l2_energy.leakage_nj);
}

TEST(Dvfs, SttSavingsGrowAtLowClock) {
  const Trace t = generate_app_trace(AppId::Email, 120'000, 5);
  auto ratio_at = [&](double cycle_ns) {
    TechnologyConfig cfg;
    cfg.cycle_ns = cycle_ns;
    ScopedTechnology scope(cfg);
    const SimResult base = simulate(t, build_scheme(SchemeKind::BaselineSram));
    const SimResult stt =
        simulate(t, build_scheme(SchemeKind::StaticPartMrstt));
    return stt.l2_energy.cache_nj() / base.l2_energy.cache_nj();
  };
  EXPECT_LT(ratio_at(2.0), ratio_at(1.0))
      << "relative savings must grow as leakage dominates at low clocks";
}

}  // namespace
}  // namespace mobcache
