/// \file test_paper_bands.cpp
/// One pinned band per experiment (E1..E18) at reduced scale: if any module
/// change silently breaks a figure the bench binaries regenerate, a test
/// here fails first. Bands are deliberately loose (small traces are noisy);
/// tight values live in EXPERIMENTS.md and the bench outputs.

#include <gtest/gtest.h>

#include "core/multi_retention_l2.hpp"
#include "core/partition_autosizer.hpp"
#include "exp/runner.hpp"
#include "sim/multicore.hpp"
#include "workload/scenario.hpp"

namespace mobcache {
namespace {

constexpr std::uint64_t kLen = 300'000;

/// Shared fixture: one reduced-suite headline run reused by several bands.
class Bands : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    runner_ = new ExperimentRunner(
        {AppId::Launcher, AppId::Browser, AppId::AudioPlayer}, kLen, 42);
    results_ = new std::vector<SchemeSuiteResult>(runner_->run_headline());
  }
  static void TearDownTestSuite() {
    delete results_;
    delete runner_;
    results_ = nullptr;
    runner_ = nullptr;
  }
  static const SchemeSuiteResult& of(SchemeKind k) {
    for (const auto& r : *results_)
      if (r.kind == k) return r;
    throw std::logic_error("missing scheme");
  }
  static ExperimentRunner* runner_;
  static std::vector<SchemeSuiteResult>* results_;
};

ExperimentRunner* Bands::runner_ = nullptr;
std::vector<SchemeSuiteResult>* Bands::results_ = nullptr;

TEST_F(Bands, E1KernelShareAbove35Percent) {
  for (const SimResult& r : of(SchemeKind::BaselineSram).per_workload)
    EXPECT_GT(r.l2_kernel_fraction(), 0.35) << r.workload;
}

TEST_F(Bands, E2InterferenceExists) {
  std::uint64_t cross = 0;
  for (const SimResult& r : of(SchemeKind::BaselineSram).per_workload)
    cross += r.l2.cross_mode_evictions;
  EXPECT_GT(cross, 1000u);
}

TEST_F(Bands, E3NaiveShrinkFarWorseThanPartitionedShrink) {
  EXPECT_GT(of(SchemeKind::ShrunkSram).avg_miss_rate,
            of(SchemeKind::StaticPartSram).avg_miss_rate + 0.08);
}

TEST_F(Bands, E4StaticKeepsMissRate) {
  EXPECT_LT(of(SchemeKind::StaticPartSram).avg_miss_rate,
            of(SchemeKind::BaselineSram).avg_miss_rate + 0.03);
}

TEST_F(Bands, E7BaselineIsLeakageDominated) {
  for (const SimResult& r : of(SchemeKind::BaselineSram).per_workload)
    EXPECT_GT(r.l2_energy.leakage_nj, 0.6 * r.l2_energy.cache_nj());
}

TEST_F(Bands, E9HeadlineSavingsAndOrdering) {
  EXPECT_LT(of(SchemeKind::StaticPartMrstt).norm_cache_energy, 0.30);
  EXPECT_LT(of(SchemeKind::DynamicStt).norm_cache_energy, 0.30);
  EXPECT_LT(of(SchemeKind::StaticPartMrstt).norm_exec_time, 1.10);
  EXPECT_LT(of(SchemeKind::DynamicStt).norm_exec_time, 1.12);
  // Paper-adjacent baselines stay strictly weaker than the contributions.
  EXPECT_GT(of(SchemeKind::DrowsySram).norm_cache_energy,
            of(SchemeKind::StaticPartMrstt).norm_cache_energy + 0.05);
  EXPECT_GT(of(SchemeKind::SharedStt).norm_cache_energy,
            of(SchemeKind::DynamicStt).norm_cache_energy + 0.05);
}

TEST(BandsStandalone, E5LifetimeAsymmetry) {
  LifetimeRecorder rec;
  SimOptions opts;
  opts.l2_eviction_observer = rec.observer();
  const Trace t = generate_app_trace(AppId::Email, kLen, 42);
  simulate(t, build_scheme(SchemeKind::StaticPartSram), opts);
  ASSERT_GT(rec.events(Mode::Kernel), 100u);
  ASSERT_GT(rec.events(Mode::User), 20u);
  EXPECT_GT(rec.liveness(Mode::User).quantile_upper_bound(0.5),
            10 * rec.liveness(Mode::Kernel).quantile_upper_bound(0.5))
      << "user blocks must live much longer than kernel blocks";
}

TEST(BandsStandalone, E6RetentionOrderingHiWorst) {
  const Trace t = generate_app_trace(AppId::Launcher, kLen, 42);
  auto energy_with = [&](RetentionClass u, RetentionClass k) {
    SchemeParams p;
    p.mrstt_user = u;
    p.mrstt_kernel = k;
    return simulate(t, build_scheme(SchemeKind::StaticPartMrstt, p))
        .l2_energy.cache_nj();
  };
  EXPECT_GT(energy_with(RetentionClass::Hi, RetentionClass::Hi),
            energy_with(RetentionClass::Mid, RetentionClass::Lo));
}

TEST(BandsStandalone, E8DynamicShrinksBelowNominal) {
  const Trace t = generate_app_trace(AppId::AudioPlayer, kLen, 42);
  const SimResult r = simulate(t, build_scheme(SchemeKind::DynamicStt));
  EXPECT_LT(r.l2_avg_enabled_bytes, 0.9 * (2 << 20));
}

TEST(BandsStandalone, E11ScenarioKernelShareHolds) {
  ScenarioConfig sc;
  sc.apps = {AppId::Launcher, AppId::Email};
  sc.total_accesses = kLen;
  sc.seed = 42;
  const Trace mix = generate_scenario(sc);
  const SimResult r = simulate(mix, build_scheme(SchemeKind::BaselineSram));
  EXPECT_GT(r.l2_kernel_fraction(), 0.35);
}

TEST(BandsStandalone, E12PrefetchReducesMisses) {
  const Trace t = generate_app_trace(AppId::VideoPlayer, kLen, 42);
  SimOptions off;
  SimOptions on;
  on.hierarchy.prefetch.enabled = true;
  const SimResult a = simulate(t, build_scheme(SchemeKind::BaselineSram), off);
  const SimResult b = simulate(t, build_scheme(SchemeKind::BaselineSram), on);
  EXPECT_LT(b.l2_miss_rate(), a.l2_miss_rate() - 0.02);
}

TEST(BandsStandalone, E15AutosizerFindsSubBaselineConfig) {
  std::vector<Trace> traces;
  traces.push_back(generate_app_trace(AppId::Launcher, 150'000, 42));
  AutosizerConfig cfg;
  cfg.max_slowdown = 1.08;
  const CandidateScore best = PartitionAutosizer(cfg).best(traces);
  EXPECT_TRUE(best.feasible);
  EXPECT_LT(best.candidate.total_bytes(), 2ull << 20);
}

TEST(BandsStandalone, E16MulticoreKeepsSavings) {
  std::vector<Trace> traces;
  traces.push_back(generate_app_trace(AppId::Launcher, 200'000, 42));
  traces.push_back(generate_app_trace(AppId::Email, 200'000, 43));

  ModeOnlyL2Adapter shared(build_scheme(SchemeKind::BaselineSram));
  const MulticoreResult rs = simulate_multicore(traces, shared);

  MulticoreL2Config mc;
  mc.cache.name = "L2";
  mc.cache.size_bytes = 2ull << 20;
  mc.cache.assoc = 16;
  mc.cores = 2;
  MulticoreDynamicL2 grouped(mc);
  const MulticoreResult rg = simulate_multicore(traces, grouped);

  EXPECT_LT(rg.l2_energy.cache_nj(), 0.45 * rs.l2_energy.cache_nj());
}

TEST(BandsStandalone, E17SavingsGrowAtLowClock) {
  const Trace t = generate_app_trace(AppId::Launcher, kLen, 42);
  auto ratio = [&](double cycle_ns) {
    TechnologyConfig cfg;
    cfg.cycle_ns = cycle_ns;
    ScopedTechnology scope(cfg);
    const SimResult base = simulate(t, build_scheme(SchemeKind::BaselineSram));
    const SimResult dp = simulate(t, build_scheme(SchemeKind::DynamicStt));
    return dp.l2_energy.cache_nj() / base.l2_energy.cache_nj();
  };
  EXPECT_LT(ratio(2.0), ratio(1.0));
}

TEST(BandsStandalone, E18BypassNeutralOrBetterOnSharedStt) {
  const Trace t = generate_app_trace(AppId::Social, kLen, 42);
  SchemeParams off;
  SchemeParams on;
  on.stt_write_bypass = true;
  const SimResult a = simulate(t, build_scheme(SchemeKind::SharedStt, off));
  const SimResult b = simulate(t, build_scheme(SchemeKind::SharedStt, on));
  EXPECT_LT(b.l2_energy.cache_nj(), a.l2_energy.cache_nj() * 1.02);
}

}  // namespace
}  // namespace mobcache
