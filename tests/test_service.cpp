#include "service/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/cancel.hpp"
#include "common/error.hpp"
#include "core/scheme.hpp"
#include "exp/result_store.hpp"
#include "service/protocol.hpp"
#include "sim/simulator.hpp"
#include "workload/suite.hpp"

namespace mobcache {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<std::string> lines_of(const std::string& bytes) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start < bytes.size()) {
    const std::size_t nl = bytes.find('\n', start);
    if (nl == std::string::npos) {
      out.push_back(bytes.substr(start));
      break;
    }
    out.push_back(bytes.substr(start, nl - start));
    start = nl + 1;
  }
  return out;
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir;
}

void submit(const MobcacheDaemon& daemon, const std::string& name,
            const std::string& body) {
  atomic_publish(
      (fs::path(const_cast<MobcacheDaemon&>(daemon).inbox_dir()) / name)
          .string(),
      body, "submit-" + name);
}

TEST(ServiceProtocol, ParsesRequestsAndRejectsBadOnes) {
  auto ok = parse_request_line(
      R"({"id":"r1","apps":"launcher,browser","scheme":"spmrstt",)"
      R"("records":5000,"seed":9,"deadline_ms":250})");
  ASSERT_TRUE(ok.request.has_value());
  EXPECT_EQ(ok.request->id, "r1");
  EXPECT_EQ(ok.request->apps.size(), 2u);
  // A named scheme runs against the baseline, exactly like simrun.
  ASSERT_EQ(ok.request->schemes.size(), 2u);
  EXPECT_EQ(ok.request->schemes[0], SchemeKind::BaselineSram);
  EXPECT_EQ(ok.request->schemes[1], SchemeKind::StaticPartMrstt);
  EXPECT_EQ(ok.request->records, 5000u);
  EXPECT_EQ(ok.request->seed, 9u);
  EXPECT_EQ(ok.request->deadline_ms, 250u);

  auto fleet = parse_request_line(
      R"({"id":"f1","kind":"fleet","sessions":12,"mean_accesses":700})");
  ASSERT_TRUE(fleet.request.has_value());
  EXPECT_EQ(fleet.request->kind, ServiceRequest::Kind::Fleet);
  EXPECT_EQ(fleet.request->fleet_scheme, SchemeKind::DynamicStt);
  EXPECT_EQ(fleet.request->sessions, 12u);

  EXPECT_FALSE(parse_request_line("not json").request.has_value());
  EXPECT_FALSE(parse_request_line("{}").request.has_value());
  EXPECT_FALSE(
      parse_request_line(R"({"id":"x","apps":"launcher","scheme":"warp"})")
          .request.has_value());
  EXPECT_FALSE(
      parse_request_line(R"({"id":"x","apps":"notanapp"})").request.has_value());
  EXPECT_FALSE(parse_request_line(R"({"id":"x","kind":"batch"})")
                   .request.has_value());
  EXPECT_FALSE(
      parse_request_line(R"({"id":"x","apps":"launcher","records":"10"})")
          .request.has_value());
  // The id survives a later parse error, for error-response correlation.
  EXPECT_EQ(parse_request_line(R"({"id":"x","apps":"notanapp"})").id, "x");
}

TEST(ServiceDaemon, GoldenResponseMatchesDirectSimulationAndMemoizes) {
  const fs::path dir = fresh_dir("svc_golden");
  ServiceConfig cfg;
  cfg.dir = dir.string();
  cfg.store_dir = (dir / "store").string();
  cfg.once = true;
  const std::string request =
      R"({"id":"g","apps":"launcher","scheme":"spmrstt","records":20000,)"
      R"("seed":7})"
      "\n";
  std::string first_response;
  {
    MobcacheDaemon daemon(cfg);
    submit(daemon, "g.jsonl", request);
    EXPECT_EQ(daemon.run(), 0);
    first_response = read_file(fs::path(daemon.outbox_dir()) / "g.jsonl");
    EXPECT_FALSE(
        fs::exists(fs::path(daemon.inbox_dir()) / "g.jsonl"));  // consumed
    EXPECT_EQ(daemon.stats().requests_served, 1u);
    EXPECT_EQ(daemon.stats().requests_rejected, 0u);
  }
  const std::vector<std::string> lines = lines_of(first_response);
  ASSERT_EQ(lines.size(), 2u);

  // The embedded payloads are byte-identical to a direct simulation's
  // record serialization — the daemon adds envelope, never re-encoding.
  const Trace trace = generate_app_trace(AppId::Launcher, 20000, 7);
  const SchemeKind kinds[2] = {SchemeKind::BaselineSram,
                               SchemeKind::StaticPartMrstt};
  for (int i = 0; i < 2; ++i) {
    const auto payload = response_result_payload(lines[i]);
    ASSERT_TRUE(payload.has_value()) << lines[i];
    const SimResult direct =
        simulate(trace, build_scheme(kinds[i], SchemeParams{}), SimOptions{});
    EXPECT_EQ(*payload, result_to_record_json(direct));
  }

  // Re-submitting the identical request against the same store is served
  // entirely warm and re-publishes identical bytes.
  MobcacheDaemon warm(cfg);
  submit(warm, "g.jsonl", request);
  EXPECT_EQ(warm.run(), 0);
  EXPECT_EQ(read_file(fs::path(warm.outbox_dir()) / "g.jsonl"),
            first_response);
  ASSERT_NE(warm.store(), nullptr);
  EXPECT_EQ(warm.store()->stats().hits, 2u);
  EXPECT_EQ(warm.store()->stats().misses, 0u);

  // Liveness snapshot: service.* counters are published to metrics.json.
  const std::string metrics = read_file(warm.metrics_path());
  EXPECT_NE(metrics.find("\"service.served\":1"), std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("\"service.warm_hits\":2"), std::string::npos)
      << metrics;
}

TEST(ServiceDaemon, MalformedAndUnknownRequestsAreAnsweredAndQuarantined) {
  const fs::path dir = fresh_dir("svc_poison");
  ServiceConfig cfg;
  cfg.dir = dir.string();
  cfg.once = true;
  MobcacheDaemon daemon(cfg);
  submit(daemon, "mixed.jsonl",
         "{oops\n"
         R"({"id":"bad-scheme","apps":"launcher","scheme":"warp"})"
         "\n"
         R"({"id":"ok","apps":"launcher","scheme":"base","records":5000})"
         "\n");
  EXPECT_EQ(daemon.run(), 0);

  const std::vector<std::string> lines =
      lines_of(read_file(fs::path(daemon.outbox_dir()) / "mixed.jsonl"));
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"error_type\":\"config\""), std::string::npos);
  EXPECT_NE(lines[0].find("malformed request"), std::string::npos);
  EXPECT_NE(lines[1].find("\"id\":\"bad-scheme\""), std::string::npos);
  EXPECT_NE(lines[1].find("unknown scheme 'warp'"), std::string::npos);
  EXPECT_NE(lines[2].find("\"id\":\"ok\""), std::string::npos);
  EXPECT_TRUE(response_result_payload(lines[2]).has_value());

  // The file carried poison lines: moved to quarantine/, not deleted.
  EXPECT_TRUE(fs::exists(fs::path(daemon.quarantine_dir()) / "mixed.jsonl"));
  EXPECT_FALSE(fs::exists(fs::path(daemon.inbox_dir()) / "mixed.jsonl"));
  EXPECT_EQ(daemon.stats().requests_rejected, 2u);
  EXPECT_EQ(daemon.stats().requests_served, 1u);
  EXPECT_EQ(daemon.stats().files_quarantined, 1u);
}

TEST(ServiceDaemon, TornRequestFileIsAnsweredAndQuarantined) {
  const fs::path dir = fresh_dir("svc_torn");
  ServiceConfig cfg;
  cfg.dir = dir.string();
  cfg.once = true;
  MobcacheDaemon daemon(cfg);
  // No trailing newline: the atomic-submission contract was violated.
  {
    std::ofstream out(fs::path(daemon.inbox_dir()) / "torn.jsonl",
                      std::ios::binary);
    out << R"({"id":"t","apps":"launcher")";
  }
  EXPECT_EQ(daemon.run(), 0);
  const std::vector<std::string> lines =
      lines_of(read_file(fs::path(daemon.outbox_dir()) / "torn.jsonl"));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"error_type\":\"trace\""), std::string::npos);
  EXPECT_NE(lines[0].find("torn request file"), std::string::npos);
  EXPECT_TRUE(fs::exists(fs::path(daemon.quarantine_dir()) / "torn.jsonl"));
}

TEST(ServiceDaemon, PreCancelledTokenLeavesInboxUntouched) {
  const fs::path dir = fresh_dir("svc_precancel");
  CancelToken token;
  token.request_cancel();
  ServiceConfig cfg;
  cfg.dir = dir.string();
  cfg.cancel = &token;
  MobcacheDaemon daemon(cfg);
  submit(daemon, "pending.jsonl",
         R"({"id":"p","apps":"launcher","scheme":"base","records":5000})"
         "\n");
  int code = -1;
  try {
    daemon.run();
  } catch (const SimError& e) {
    code = exit_code_for(e);
  }
  // The documented resumable drain: exit 75, request still queued.
  EXPECT_EQ(code, kExitInterrupted);
  EXPECT_TRUE(fs::exists(fs::path(daemon.inbox_dir()) / "pending.jsonl"));
  EXPECT_FALSE(fs::exists(fs::path(daemon.outbox_dir()) / "pending.jsonl"));
}

TEST(ServiceDaemon, CancelDrainsWithExit75AndRestartServesWarmHits) {
  const fs::path dir = fresh_dir("svc_drain");
  const std::string store_dir = (dir / "store").string();
  CancelToken token;
  ServiceConfig cfg;
  cfg.dir = dir.string();
  cfg.store_dir = store_dir;
  cfg.poll_ms = 5;
  cfg.epoch_ms = 50;
  cfg.cancel = &token;
  MobcacheDaemon daemon(cfg);
  submit(daemon, "req-a.jsonl",
         R"({"id":"a","apps":"launcher","scheme":"spmrstt","records":20000,)"
         R"("seed":7})"
         "\n");

  std::atomic<int> code{-1};
  std::thread worker([&] {
    try {
      daemon.run();
      code = 0;
    } catch (const SimError& e) {
      code = exit_code_for(e);
    }
  });
  // Wait for req-a's response, then ask the long-running daemon to drain.
  const fs::path response = fs::path(daemon.outbox_dir()) / "req-a.jsonl";
  for (int i = 0; i < 2000 && !fs::exists(response); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(fs::exists(response));
  token.request_cancel();
  worker.join();
  EXPECT_EQ(code.load(), kExitInterrupted);

  // A restarted daemon against the same store serves the overlapping cells
  // of a bigger request warm: req-b's base and spmrstt cells were computed
  // by req-a, so the store reports hits without re-simulating them.
  ServiceConfig cfg2;
  cfg2.dir = dir.string();
  cfg2.store_dir = store_dir;
  cfg2.once = true;
  MobcacheDaemon restarted(cfg2);
  submit(restarted, "req-b.jsonl",
         R"({"id":"b","apps":"launcher","scheme":"all","records":20000,)"
         R"("seed":7})"
         "\n");
  EXPECT_EQ(restarted.run(), 0);
  const std::vector<std::string> lines =
      lines_of(read_file(fs::path(restarted.outbox_dir()) / "req-b.jsonl"));
  EXPECT_EQ(lines.size(), headline_schemes().size());
  ASSERT_NE(restarted.store(), nullptr);
  EXPECT_GE(restarted.store()->stats().hits, 2u);
}

TEST(ServiceDaemon, FleetRequestsReturnSessionSummaries) {
  const fs::path dir = fresh_dir("svc_fleet");
  ServiceConfig cfg;
  cfg.dir = dir.string();
  cfg.once = true;
  MobcacheDaemon daemon(cfg);
  submit(daemon, "fleet.jsonl",
         R"({"id":"f","kind":"fleet","scheme":"dpstt","sessions":16,)"
         R"("mean_accesses":600,"seed":3})"
         "\n");
  EXPECT_EQ(daemon.run(), 0);
  const std::vector<std::string> lines =
      lines_of(read_file(fs::path(daemon.outbox_dir()) / "fleet.jsonl"));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"kind\":\"fleet\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"sessions\":16"), std::string::npos);
  EXPECT_NE(lines[0].find("\"cpi\""), std::string::npos);
  EXPECT_FALSE(response_result_payload(lines[0]).has_value());
}

}  // namespace
}  // namespace mobcache
