#include "common/flat_json.hpp"

#include <gtest/gtest.h>

#include "common/json_writer.hpp"

namespace mobcache {
namespace {

TEST(FlatParser, ParsesStringsAndNumbersWithTypeChecks) {
  FlatParser f;
  ASSERT_TRUE(f.parse(
      R"({"name":"launcher","count":42,"cpi":1.25,"quoted":"7"})"));
  std::string s;
  std::uint64_t u = 0;
  double d = 0.0;
  EXPECT_TRUE(f.has("name"));
  EXPECT_FALSE(f.has("missing"));
  EXPECT_TRUE(f.get_str("name", s));
  EXPECT_EQ(s, "launcher");
  EXPECT_TRUE(f.get_u64("count", u));
  EXPECT_EQ(u, 42u);
  EXPECT_TRUE(f.get_dbl("cpi", d));
  EXPECT_DOUBLE_EQ(d, 1.25);
  // Type discipline: a quoted number is a string, a number is not a string.
  EXPECT_FALSE(f.get_u64("quoted", u));
  EXPECT_FALSE(f.get_str("count", s));
  // A double field is not a u64.
  EXPECT_FALSE(f.get_u64("cpi", u));
}

TEST(FlatParser, RoundTripsJsonEscapeOutput) {
  const std::string raw = "tab\there \"quote\" back\\slash\nctrl\x01";
  FlatParser f;
  ASSERT_TRUE(f.parse("{\"v\":\"" + json_escape(raw) + "\"}"));
  std::string s;
  ASSERT_TRUE(f.get_str("v", s));
  EXPECT_EQ(s, raw);
}

TEST(FlatParser, RejectsMalformedDocuments) {
  FlatParser f;
  EXPECT_FALSE(f.parse(""));
  EXPECT_FALSE(f.parse("{"));
  EXPECT_FALSE(f.parse("{\"a\":}"));
  EXPECT_FALSE(f.parse("{\"a\":1,}"));
  EXPECT_FALSE(f.parse("{\"a\":1} trailing"));
  EXPECT_FALSE(f.parse("[1,2]"));
  EXPECT_FALSE(f.parse("{\"a\":\"unterminated}"));
  // One nesting level only: nested objects are outside the grammar.
  EXPECT_FALSE(f.parse("{\"a\":{\"b\":1}}"));
}

TEST(FlatParser, ReparseClearsPreviousFields) {
  FlatParser f;
  ASSERT_TRUE(f.parse("{\"a\":1}"));
  ASSERT_TRUE(f.parse("{\"b\":2}"));
  EXPECT_FALSE(f.has("a"));
  EXPECT_TRUE(f.has("b"));
}

}  // namespace
}  // namespace mobcache
