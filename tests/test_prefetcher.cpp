#include "cache/prefetcher.hpp"

#include <gtest/gtest.h>

#include "core/scheme.hpp"
#include "sim/simulator.hpp"
#include "workload/suite.hpp"

namespace mobcache {
namespace {

PrefetchConfig enabled(std::uint32_t degree = 2) {
  PrefetchConfig c;
  c.enabled = true;
  c.degree = degree;
  return c;
}

TEST(Prefetcher, DisabledNeverIssues) {
  StridePrefetcher p(PrefetchConfig{});
  for (Addr a = 0; a < 100 * kLineSize; a += kLineSize)
    EXPECT_TRUE(p.observe_miss(a, Mode::User).empty());
  EXPECT_EQ(p.issued(), 0u);
}

TEST(Prefetcher, TrainsOnSequentialStream) {
  StridePrefetcher p(enabled());
  EXPECT_TRUE(p.observe_miss(0, Mode::User).empty());           // first touch
  EXPECT_TRUE(p.observe_miss(kLineSize, Mode::User).empty());   // stride seen
  // Third miss confirms the stride; candidates are the next two lines.
  const auto c = p.observe_miss(2 * kLineSize, Mode::User);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0], 3 * kLineSize);
  EXPECT_EQ(c[1], 4 * kLineSize);
}

TEST(Prefetcher, DetectsLargerStrides) {
  StridePrefetcher p(enabled(1));
  const Addr stride = 4 * kLineSize;
  p.observe_miss(0x1000, Mode::User);
  p.observe_miss(0x1000 + stride, Mode::User);
  const auto c = p.observe_miss(0x1000 + 2 * stride, Mode::User);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0], 0x1000 + 3 * stride);
}

TEST(Prefetcher, DetectsDescendingStreams) {
  StridePrefetcher p(enabled(1));
  // Stay inside one 4 KB tracking region (training restarts across
  // region boundaries, as in page-based hardware prefetchers).
  const Addr top = 0x10FC0;
  p.observe_miss(top, Mode::User);
  p.observe_miss(top - kLineSize, Mode::User);
  const auto c = p.observe_miss(top - 2 * kLineSize, Mode::User);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0], top - 3 * kLineSize);
}

TEST(Prefetcher, RandomPatternStaysQuiet) {
  StridePrefetcher p(enabled());
  // Deltas differ every time: never two consecutive confirmations.
  std::uint64_t issued = 0;
  Addr a = 0x5000;
  const Addr deltas[] = {kLineSize, 3 * kLineSize, 2 * kLineSize,
                         5 * kLineSize, kLineSize, 4 * kLineSize};
  for (Addr d : deltas) {
    a += d;
    issued += p.observe_miss(a, Mode::User).size();
  }
  EXPECT_EQ(issued, 0u);
}

TEST(Prefetcher, NeverCrossesAddressSpaceHalf) {
  StridePrefetcher p(enabled(8));
  // Kernel stream marching toward the top of the address space: candidates
  // must stay kernel-side (they do), but a user stream near the kernel
  // boundary must not fabricate kernel addresses.
  const Addr base = kKernelSpaceBase - 4 * kLineSize;
  p.observe_miss(base, Mode::User);
  p.observe_miss(base + kLineSize, Mode::User);
  const auto c = p.observe_miss(base + 2 * kLineSize, Mode::User);
  ASSERT_LE(c.size(), 1u);  // only one line fits before the boundary
  for (Addr x : c) EXPECT_FALSE(is_kernel_addr(x));
}

TEST(Prefetcher, PerModeTablesIndependent) {
  StridePrefetcher p(enabled(1));
  // Interleaved user and kernel streams must both train.
  for (int i = 0; i < 3; ++i) {
    p.observe_miss(static_cast<Addr>(i) * kLineSize, Mode::User);
    p.observe_miss(kKernelSpaceBase + static_cast<Addr>(i) * kLineSize,
                   Mode::Kernel);
  }
  EXPECT_GE(p.issued(), 2u);
}

TEST(Prefetcher, TracksMultipleRegions) {
  StridePrefetcher p(enabled(1));
  // Two concurrent streams in different 4 KB regions.
  for (int i = 0; i < 3; ++i) {
    p.observe_miss(0x00000 + static_cast<Addr>(i) * kLineSize, Mode::User);
    p.observe_miss(0x80000 + static_cast<Addr>(i) * kLineSize, Mode::User);
  }
  EXPECT_GE(p.issued(), 2u);
}

TEST(PrefetchCache, FillsAreAccountedSeparately) {
  CacheConfig cfg;
  cfg.size_bytes = 16ull << 10;
  cfg.assoc = 4;
  SetAssocCache c(cfg);
  c.access(0, AccessType::Read, Mode::User, 0, full_way_mask(4),
           /*prefetch=*/true);
  EXPECT_EQ(c.stats().prefetch_fills, 1u);
  EXPECT_EQ(c.stats().total_accesses(), 0u);
  EXPECT_EQ(c.stats().fills, 0u);

  // Demand hit on the prefetched line counts as useful.
  const AccessResult r = c.access(0, AccessType::Read, Mode::User, 10);
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(c.stats().useful_prefetches, 1u);
  // Only the first demand touch counts.
  c.access(0, AccessType::Read, Mode::User, 20);
  EXPECT_EQ(c.stats().useful_prefetches, 1u);
}

TEST(PrefetchCache, PrefetchOfResidentLineIsNoop) {
  CacheConfig cfg;
  cfg.size_bytes = 16ull << 10;
  cfg.assoc = 4;
  SetAssocCache c(cfg);
  c.access(0, AccessType::Read, Mode::User, 0);
  const AccessResult r = c.access(0, AccessType::Read, Mode::User, 5,
                                  full_way_mask(4), /*prefetch=*/true);
  EXPECT_TRUE(r.hit);
  EXPECT_FALSE(r.filled);
  EXPECT_EQ(c.stats().prefetch_fills, 0u);
}

TEST(PrefetchEndToEnd, StreamingAppBenefits) {
  // fft is stride-dominated: prefetch must reduce its stall cycles.
  const Trace t = generate_app_trace(AppId::ComputeFft, 200'000, 3);

  SimOptions off;
  const SimResult r_off = simulate(t, build_scheme(SchemeKind::BaselineSram), off);

  SimOptions on;
  on.hierarchy.prefetch.enabled = true;
  const SimResult r_on = simulate(t, build_scheme(SchemeKind::BaselineSram), on);

  EXPECT_GT(r_on.l2.prefetch_fills, 0u);
  EXPECT_GT(r_on.l2.useful_prefetches, r_on.l2.prefetch_fills / 4)
      << "stream prefetch accuracy collapsed";
  EXPECT_LT(r_on.cycles, r_off.cycles);
  EXPECT_LT(r_on.l2_miss_rate(), r_off.l2_miss_rate());
}

TEST(PrefetchEndToEnd, WorksOnEveryScheme) {
  const Trace t = generate_app_trace(AppId::VideoPlayer, 100'000, 3);
  SimOptions on;
  on.hierarchy.prefetch.enabled = true;
  for (SchemeKind k : headline_schemes()) {
    const SimResult r = simulate(t, build_scheme(k), on);
    EXPECT_GT(r.l2.prefetch_fills, 0u) << scheme_name(k);
    // Conservation still holds for demand counters.
    EXPECT_EQ(r.l2.total_hits() + r.l2.total_misses(), r.l2.total_accesses())
        << scheme_name(k);
  }
}

}  // namespace
}  // namespace mobcache
