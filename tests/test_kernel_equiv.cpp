/// \file test_kernel_equiv.cpp
/// Golden equivalence suite for the access-kernel family.
///
/// The fast kernels (policy-devirtualized, feature-specialized — see
/// docs/PERFORMANCE.md) must be bit-identical to the generic reference
/// kernel: same stats, same energy, same wear, same per-block state, for
/// every replacement policy, every L2 scheme, with and without retention,
/// fault hooks and eviction observers. These tests pin that contract; any
/// divergence is a kernel bug, never an acceptable "optimization".

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "cache/set_assoc_cache.hpp"
#include "common/rng.hpp"
#include "core/scheme.hpp"
#include "obs/telemetry.hpp"
#include "sim/simulator.hpp"
#include "workload/suite.hpp"

namespace mobcache {
namespace {

// ---- comparison helpers --------------------------------------------------

#define EXPECT_FIELD_EQ(a, b, f) EXPECT_EQ((a).f, (b).f) << #f

void expect_stats_identical(const CacheStats& a, const CacheStats& b,
                            const std::string& what) {
  SCOPED_TRACE(what);
  for (int m = 0; m < kModeCount; ++m) {
    EXPECT_EQ(a.accesses[m], b.accesses[m]) << "accesses[" << m << "]";
    EXPECT_EQ(a.hits[m], b.hits[m]) << "hits[" << m << "]";
  }
  EXPECT_FIELD_EQ(a, b, store_hits);
  EXPECT_FIELD_EQ(a, b, fills);
  EXPECT_FIELD_EQ(a, b, evictions);
  EXPECT_FIELD_EQ(a, b, writebacks);
  EXPECT_FIELD_EQ(a, b, cross_mode_evictions);
  EXPECT_FIELD_EQ(a, b, expired_blocks);
  EXPECT_FIELD_EQ(a, b, expired_dirty);
  EXPECT_FIELD_EQ(a, b, refreshes);
  EXPECT_FIELD_EQ(a, b, prefetch_fills);
  EXPECT_FIELD_EQ(a, b, useful_prefetches);
  EXPECT_FIELD_EQ(a, b, write_faults);
  EXPECT_FIELD_EQ(a, b, transient_upsets);
  EXPECT_FIELD_EQ(a, b, ecc_corrections);
  EXPECT_FIELD_EQ(a, b, fault_losses);
  EXPECT_FIELD_EQ(a, b, fault_lost_dirty);
  EXPECT_FIELD_EQ(a, b, scrub_repairs);
  EXPECT_FIELD_EQ(a, b, silent_faults);
}

/// Energy comparisons are exact: the kernels must take the same branches in
/// the same order, so the L2 wrappers see identical event sequences and the
/// floating-point sums agree to the last bit.
void expect_energy_identical(const EnergyBreakdown& a,
                             const EnergyBreakdown& b,
                             const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_FIELD_EQ(a, b, leakage_nj);
  EXPECT_FIELD_EQ(a, b, read_nj);
  EXPECT_FIELD_EQ(a, b, write_nj);
  EXPECT_FIELD_EQ(a, b, refresh_nj);
  EXPECT_FIELD_EQ(a, b, dram_nj);
  EXPECT_FIELD_EQ(a, b, ecc_nj);
}

void expect_wear_identical(const WearSummary& a, const WearSummary& b,
                           const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_FIELD_EQ(a, b, total_writes);
  EXPECT_FIELD_EQ(a, b, max_writes);
  EXPECT_FIELD_EQ(a, b, mean_writes);
  EXPECT_FIELD_EQ(a, b, p99_writes);
}

void expect_result_identical(const AccessResult& a, const AccessResult& b) {
  EXPECT_FIELD_EQ(a, b, hit);
  EXPECT_FIELD_EQ(a, b, way);
  EXPECT_FIELD_EQ(a, b, filled);
  EXPECT_FIELD_EQ(a, b, evicted_valid);
  EXPECT_FIELD_EQ(a, b, victim_dirty);
  EXPECT_FIELD_EQ(a, b, victim_line);
  EXPECT_FIELD_EQ(a, b, victim_owner);
  EXPECT_FIELD_EQ(a, b, victim_access_count);
  EXPECT_FIELD_EQ(a, b, target_expired);
  EXPECT_FIELD_EQ(a, b, expired_was_dirty);
  EXPECT_FIELD_EQ(a, b, ecc_corrected);
  EXPECT_FIELD_EQ(a, b, fault_lost);
  EXPECT_FIELD_EQ(a, b, fault_lost_dirty);
}

void expect_blocks_identical(const SetAssocCache& a, const SetAssocCache& b) {
  ASSERT_EQ(a.num_sets(), b.num_sets());
  ASSERT_EQ(a.assoc(), b.assoc());
  for (std::uint32_t s = 0; s < a.num_sets(); ++s) {
    for (std::uint32_t w = 0; w < a.assoc(); ++w) {
      const BlockMeta x = a.block(s, w);
      const BlockMeta y = b.block(s, w);
      EXPECT_FIELD_EQ(x, y, valid) << " set " << s << " way " << w;
      if (!x.valid || !y.valid) continue;
      EXPECT_FIELD_EQ(x, y, line) << " set " << s << " way " << w;
      EXPECT_FIELD_EQ(x, y, dirty) << " set " << s << " way " << w;
      EXPECT_FIELD_EQ(x, y, owner) << " set " << s << " way " << w;
      EXPECT_FIELD_EQ(x, y, fill_cycle) << " set " << s << " way " << w;
      EXPECT_FIELD_EQ(x, y, last_access) << " set " << s << " way " << w;
      EXPECT_FIELD_EQ(x, y, last_write) << " set " << s << " way " << w;
      EXPECT_FIELD_EQ(x, y, retention_deadline) << " set " << s << " way "
                                                << w;
      EXPECT_FIELD_EQ(x, y, access_count) << " set " << s << " way " << w;
      EXPECT_FIELD_EQ(x, y, prefetched) << " set " << s << " way " << w;
      EXPECT_FIELD_EQ(x, y, fault_bits) << " set " << s << " way " << w;
    }
  }
}

// ---- deterministic fault hooks -------------------------------------------

/// Stateless, address-derived fault behavior: both cache instances see the
/// exact same hook responses regardless of call interleaving, so any
/// divergence is attributable to the kernels alone.
class StubHooks final : public ArrayFaultHooks {
 public:
  Cycle effective_retention(Addr line, Cycle nominal) override {
    return nominal - (line >> 6) % (nominal / 4 + 1);
  }
  std::uint32_t write_upsets(Addr line, std::uint32_t set,
                             std::uint32_t way) override {
    return ((line >> 6) + set * 31u + way * 7u) % 23u == 0
               ? 1u + (way & 1u)
               : 0u;
  }
  FaultReadOutcome read_check(Addr, std::uint32_t fault_bits) override {
    switch (fault_bits % 3u) {
      case 0: return FaultReadOutcome::Corrected;
      case 1: return FaultReadOutcome::Lost;
      default: return FaultReadOutcome::Silent;
    }
  }
};

/// Restores the process-wide default kernel mode even when a test fails.
struct DefaultModeGuard {
  KernelMode saved = SetAssocCache::default_kernel_mode();
  ~DefaultModeGuard() { SetAssocCache::set_default_kernel_mode(saved); }
};

constexpr ReplKind kAllRepls[] = {ReplKind::Lru, ReplKind::Fifo,
                                  ReplKind::Random, ReplKind::Plru,
                                  ReplKind::Srrip};

// ---- direct array equivalence --------------------------------------------

struct ArrayCase {
  ReplKind repl;
  Cycle retention;   ///< 0 = infinite
  bool fault_hooks;
  bool observer;
};

/// Drives the same pseudorandom operation stream (mixed demand accesses,
/// prefetches, bypasses, way-mask restrictions, scrubs, upsets, sweeps and
/// flushes) through a Fast-mode and a Reference-mode array and demands
/// bit-identical outcomes at every step and in the final state.
void run_array_case(const ArrayCase& c) {
  CacheConfig cfg;
  cfg.name = "equiv";
  cfg.size_bytes = 64ull << 10;
  cfg.assoc = 8;
  cfg.repl = c.repl;

  SetAssocCache fast(cfg, /*seed=*/99);
  SetAssocCache ref(cfg, /*seed=*/99);
  fast.set_kernel_mode(KernelMode::Fast);
  ref.set_kernel_mode(KernelMode::Reference);

  StubHooks hooks;  // stateless: safe to share
  if (c.fault_hooks) {
    fast.set_fault_hooks(&hooks);
    ref.set_fault_hooks(&hooks);
  }
  if (c.retention != 0) {
    fast.set_retention_period(c.retention);
    ref.set_retention_period(c.retention);
  }
  std::vector<EvictionEvent> fast_ev, ref_ev;
  if (c.observer) {
    fast.set_eviction_observer(
        [&](const EvictionEvent& e) { fast_ev.push_back(e); });
    ref.set_eviction_observer(
        [&](const EvictionEvent& e) { ref_ev.push_back(e); });
  }

  // The fast instance must actually be running a specialized kernel.
  EXPECT_NE(fast.kernel_name(), "reference") << fast.kernel_name();
  EXPECT_EQ(ref.kernel_name(), "reference");

  Rng rng(0xC0FFEEull + static_cast<std::uint64_t>(c.repl) * 1000 +
          c.retention + (c.fault_hooks ? 7 : 0) + (c.observer ? 13 : 0));
  const WayMask full = full_way_mask(cfg.assoc);
  Cycle now = 0;
  for (int i = 0; i < 30'000; ++i) {
    now += rng.range(1, 40);
    // A hot footprint close to capacity plus a long uniform tail, split
    // user/kernel so owner-mode paths light up.
    const bool kernel = rng.chance(0.35);
    Addr line = rng.chance(0.8) ? rng.below(1200) * kLineSize
                                : rng.below(1u << 18) * kLineSize;
    if (kernel) line += kKernelSpaceBase;
    const AccessType type = rng.chance(0.3)    ? AccessType::Write
                            : rng.chance(0.25) ? AccessType::InstFetch
                                               : AccessType::Read;
    const Mode mode = kernel ? Mode::Kernel : Mode::User;
    // Occasionally restrict the way mask the way the partitioned /
    // dynamic designs do.
    WayMask allowed = full;
    if (rng.chance(0.25))
      allowed = way_range_mask(static_cast<std::uint32_t>(rng.below(4)),
                               static_cast<std::uint32_t>(rng.range(2, 4)));
    const bool prefetch = rng.chance(0.05);
    const bool no_alloc = !prefetch && rng.chance(0.05);

    const AccessResult ra =
        fast.access(line, type, mode, now, allowed, prefetch, no_alloc);
    const AccessResult rb =
        ref.access(line, type, mode, now, allowed, prefetch, no_alloc);
    expect_result_identical(ra, rb);

    // Interleave the cold-path mutators both kernels share.
    if (rng.chance(0.01)) {
      const auto set = static_cast<std::uint32_t>(rng.below(fast.num_sets()));
      const auto way = static_cast<std::uint32_t>(rng.below(cfg.assoc));
      EXPECT_EQ(fast.refresh_block(set, way, now),
                ref.refresh_block(set, way, now));
    }
    if (c.fault_hooks && rng.chance(0.005)) {
      const auto set = static_cast<std::uint32_t>(rng.below(fast.num_sets()));
      const auto way = static_cast<std::uint32_t>(rng.below(cfg.assoc));
      const auto bits = static_cast<std::uint32_t>(rng.range(1, 3));
      EXPECT_EQ(fast.corrupt_block(set, way, bits),
                ref.corrupt_block(set, way, bits));
    }
    if (c.retention != 0 && rng.chance(0.002)) {
      EXPECT_EQ(fast.expire_sweep(now), ref.expire_sweep(now));
    }
    if (rng.chance(0.001)) {
      const WayMask flush = way_bit(static_cast<std::uint32_t>(
          rng.below(cfg.assoc)));
      EXPECT_EQ(fast.invalidate_ways(flush), ref.invalidate_ways(flush));
    }
    if (rng.chance(0.01)) {
      bool da = false, db = false;
      EXPECT_EQ(fast.invalidate_line(line, &da),
                ref.invalidate_line(line, &db));
      EXPECT_EQ(da, db);
    }
  }

  expect_stats_identical(fast.stats(), ref.stats(), "final stats");
  expect_wear_identical(fast.wear_summary(), ref.wear_summary(),
                        "final wear");
  EXPECT_EQ(fast.location_writes(), ref.location_writes());
  EXPECT_EQ(fast.occupancy(full, now), ref.occupancy(full, now));
  EXPECT_EQ(fast.dirty_occupancy(full, now), ref.dirty_occupancy(full, now));
  expect_blocks_identical(fast, ref);

  if (c.observer) {
    ASSERT_EQ(fast_ev.size(), ref_ev.size());
    for (std::size_t i = 0; i < fast_ev.size(); ++i) {
      EXPECT_FIELD_EQ(fast_ev[i], ref_ev[i], line) << " event " << i;
      EXPECT_FIELD_EQ(fast_ev[i], ref_ev[i], owner) << " event " << i;
      EXPECT_FIELD_EQ(fast_ev[i], ref_ev[i], fill_cycle) << " event " << i;
      EXPECT_FIELD_EQ(fast_ev[i], ref_ev[i], last_access) << " event " << i;
      EXPECT_FIELD_EQ(fast_ev[i], ref_ev[i], evict_cycle) << " event " << i;
      EXPECT_FIELD_EQ(fast_ev[i], ref_ev[i], dirty) << " event " << i;
      EXPECT_FIELD_EQ(fast_ev[i], ref_ev[i], access_count) << " event " << i;
    }
  }
}

class ArrayEquiv : public ::testing::TestWithParam<ReplKind> {};

TEST_P(ArrayEquiv, PlainArray) {
  run_array_case({GetParam(), 0, false, false});
}

TEST_P(ArrayEquiv, WithRetention) {
  run_array_case({GetParam(), 5'000, false, false});
}

TEST_P(ArrayEquiv, WithFaultHooks) {
  run_array_case({GetParam(), 0, true, false});
}

TEST_P(ArrayEquiv, WithRetentionAndFaults) {
  run_array_case({GetParam(), 5'000, true, false});
}

TEST_P(ArrayEquiv, WithObservers) {
  run_array_case({GetParam(), 5'000, true, true});
}

INSTANTIATE_TEST_SUITE_P(AllRepls, ArrayEquiv,
                         ::testing::ValuesIn(kAllRepls),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// ---- kernel selection / dispatch table -----------------------------------

TEST(KernelDispatch, FastIsTheDefault) {
  SetAssocCache c(CacheConfig{});
  EXPECT_EQ(c.kernel_mode(), KernelMode::Fast);
  EXPECT_NE(c.kernel_name(), "reference");
}

TEST(KernelDispatch, NamesTrackPolicyAndFeatures) {
  CacheConfig cfg;
  cfg.size_bytes = 64ull << 10;
  cfg.assoc = 8;
  for (ReplKind k : kAllRepls) {
    cfg.repl = k;
    SetAssocCache c(cfg);
    EXPECT_NE(c.kernel_name().find("fast/"), std::string::npos)
        << c.kernel_name();
    // Feature toggles must re-select the kernel.
    c.set_retention_period(1000);
    EXPECT_NE(c.kernel_name().find("retention"), std::string::npos)
        << c.kernel_name();
    c.set_kernel_mode(KernelMode::Reference);
    EXPECT_EQ(c.kernel_name(), "reference");
    c.set_kernel_mode(KernelMode::Fast);
    EXPECT_NE(c.kernel_name(), "reference");
  }
}

TEST(KernelDispatch, RetentionSpecializationIsSticky) {
  // Once a nonzero retention period existed, blocks may carry deadlines, so
  // resetting the period to 0 must NOT re-select the retention-free kernel.
  CacheConfig cfg;
  cfg.size_bytes = 16ull << 10;
  cfg.assoc = 4;
  SetAssocCache fast(cfg), ref(cfg);
  fast.set_kernel_mode(KernelMode::Fast);
  ref.set_kernel_mode(KernelMode::Reference);
  for (SetAssocCache* c : {&fast, &ref}) {
    c->set_retention_period(100);
    c->access(0x1000, AccessType::Write, Mode::User, 10);
    c->set_retention_period(0);
  }
  EXPECT_NE(fast.kernel_name().find("retention"), std::string::npos)
      << fast.kernel_name();
  // The stale deadline must still expire the block in both kernels.
  EXPECT_FALSE(fast.contains(0x1000, 500));
  EXPECT_FALSE(ref.contains(0x1000, 500));
  const AccessResult a =
      fast.access(0x1000, AccessType::Read, Mode::User, 500);
  const AccessResult b = ref.access(0x1000, AccessType::Read, Mode::User, 500);
  expect_result_identical(a, b);
  EXPECT_TRUE(a.target_expired);
}

TEST(KernelDispatch, ProcessDefaultAppliesToNewArrays) {
  DefaultModeGuard guard;
  SetAssocCache::set_default_kernel_mode(KernelMode::Reference);
  SetAssocCache c(CacheConfig{});
  EXPECT_EQ(c.kernel_mode(), KernelMode::Reference);
  EXPECT_EQ(c.kernel_name(), "reference");
  SetAssocCache::set_default_kernel_mode(KernelMode::Fast);
  SetAssocCache d(CacheConfig{});
  EXPECT_EQ(d.kernel_mode(), KernelMode::Fast);
}

// ---- scheme-level equivalence --------------------------------------------

/// Every scheme the paper evaluates, simulated end-to-end twice — all
/// arrays on the fast kernels vs. all arrays on the reference kernel — must
/// produce bit-identical SimResults (stats, energy, CPI, wear-driven
/// counters), for every replacement policy and with fault injection on and
/// off.
class SchemeEquiv : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace_ = new Trace(generate_app_trace(AppId::Browser, 40'000, 7));
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }

  static void expect_sim_identical(const SimResult& a, const SimResult& b,
                                   const std::string& what) {
    SCOPED_TRACE(what);
    EXPECT_FIELD_EQ(a, b, records);
    EXPECT_FIELD_EQ(a, b, cycles);
    EXPECT_FIELD_EQ(a, b, cpi);
    expect_stats_identical(a.l1i, b.l1i, what + "/l1i");
    expect_stats_identical(a.l1d, b.l1d, what + "/l1d");
    expect_stats_identical(a.l2, b.l2, what + "/l2");
    expect_energy_identical(a.l2_energy, b.l2_energy, what + "/energy");
    EXPECT_FIELD_EQ(a, b, l1_energy_nj);
    EXPECT_FIELD_EQ(a, b, l2_avg_enabled_bytes);
    EXPECT_FIELD_EQ(a, b, l2_quarantined_ways);
    EXPECT_FIELD_EQ(a, b, stall_l2_hit_cycles);
    EXPECT_FIELD_EQ(a, b, stall_l2_miss_cycles);
    EXPECT_FIELD_EQ(a, b, prefetches_issued);
  }

  static void run_scheme(SchemeKind kind, ReplKind repl, bool fault) {
    DefaultModeGuard guard;
    SchemeParams p;
    p.repl = repl;
    if (fault) p.fault = FaultConfig::from_rate(2e-3);

    SetAssocCache::set_default_kernel_mode(KernelMode::Fast);
    const SimResult fast_res = simulate(*trace_, build_scheme(kind, p));
    SetAssocCache::set_default_kernel_mode(KernelMode::Reference);
    const SimResult ref_res = simulate(*trace_, build_scheme(kind, p));

    expect_sim_identical(fast_res, ref_res,
                         std::string(scheme_name(kind)) + "/" +
                             std::string(to_string(repl)) +
                             (fault ? "/fault" : ""));
  }

  static Trace* trace_;
};

Trace* SchemeEquiv::trace_ = nullptr;

TEST_F(SchemeEquiv, AllSchemesAllReplsFaultFree) {
  for (SchemeKind kind :
       {SchemeKind::BaselineSram, SchemeKind::ShrunkSram,
        SchemeKind::SharedStt, SchemeKind::DrowsySram, SchemeKind::VictimSram,
        SchemeKind::StaticPartSram, SchemeKind::StaticPartMrstt,
        SchemeKind::DynamicSram, SchemeKind::DynamicStt}) {
    for (ReplKind repl : kAllRepls) run_scheme(kind, repl, false);
  }
}

TEST_F(SchemeEquiv, FaultInjectedSchemes) {
  // Fault injection is wired into the SharedL2-array schemes; partitioned
  // designs seed one injector per segment. LRU (the paper's config) plus
  // SRRIP (the most stateful alternative) cover the hook interleavings.
  for (SchemeKind kind :
       {SchemeKind::BaselineSram, SchemeKind::SharedStt,
        SchemeKind::StaticPartMrstt, SchemeKind::DynamicStt}) {
    for (ReplKind repl : {ReplKind::Lru, ReplKind::Srrip})
      run_scheme(kind, repl, true);
  }
}

// ---- instrumentation must not perturb results ----------------------------

TEST_F(SchemeEquiv, TelemetrySamplerCausesNoStatDrift) {
  // The simulate() demand loop is split into an instrumented and a plain
  // variant; both must retire the exact same state. Run the same scheme
  // with a sampling telemetry session, with a zero-interval session, and
  // with none at all — three different loop selections, one result.
  for (SchemeKind kind :
       {SchemeKind::BaselineSram, SchemeKind::StaticPartMrstt,
        SchemeKind::DynamicStt}) {
    SchemeParams p;
    const SimResult bare = simulate(*trace_, build_scheme(kind, p));

    Telemetry sampling;
    sampling.set_sample_interval(512);
    SimOptions with_sampler;
    with_sampler.telemetry = &sampling;
    const SimResult instrumented =
        simulate(*trace_, build_scheme(kind, p), with_sampler);
    EXPECT_GT(sampling.epochs().size(), 0u);

    Telemetry idle;  // attached but never sampling → plain loop
    SimOptions with_idle;
    with_idle.telemetry = &idle;
    const SimResult attached =
        simulate(*trace_, build_scheme(kind, p), with_idle);

    expect_sim_identical(bare, instrumented,
                         std::string(scheme_name(kind)) + "/sampler");
    expect_sim_identical(bare, attached,
                         std::string(scheme_name(kind)) + "/attached");
  }
}

}  // namespace
}  // namespace mobcache
