#include "core/victim_cache_l2.hpp"

#include <gtest/gtest.h>

#include "core/scheme.hpp"
#include "sim/simulator.hpp"
#include "workload/suite.hpp"

namespace mobcache {
namespace {

VictimCacheL2Config cfg(std::uint32_t entries = 8) {
  VictimCacheL2Config c;
  c.cache.name = "L2";
  c.cache.size_bytes = 8ull << 10;  // tiny direct-mapped to force conflicts
  c.cache.assoc = 1;
  c.victim_entries = entries;
  return c;
}

TEST(VictimCache, RescuesConflictVictims) {
  VictimCacheL2 l2(cfg());
  const std::uint64_t sets = (8ull << 10) / kLineSize;
  const Addr a = 0;
  const Addr b = sets * kLineSize;  // conflicts with a

  l2.access(a, AccessType::Read, Mode::User, 0);
  l2.access(b, AccessType::Read, Mode::User, 10);  // evicts a → buffer
  const L2Result r = l2.access(a, AccessType::Read, Mode::User, 20);
  EXPECT_FALSE(r.hit);  // miss in the main array...
  EXPECT_EQ(l2.victim_hits(), 1u);  // ...but served from the buffer
  // The victim-buffer path must be far faster than DRAM.
  EXPECT_LT(r.latency, make_sram(8ull << 10).read_latency +
                           tech_constants::kDramVisibleStall);
}

TEST(VictimCache, TracksCrossModeRescues) {
  VictimCacheL2 l2(cfg());
  const std::uint64_t sets = (8ull << 10) / kLineSize;
  const Addr ku = kKernelSpaceBase;           // kernel line, set 0
  const Addr ua = sets * kLineSize;           // user line, same set

  l2.access(ku, AccessType::Read, Mode::Kernel, 0);
  l2.access(ua, AccessType::Read, Mode::User, 10);  // user evicts kernel
  l2.access(ku, AccessType::Read, Mode::Kernel, 20);
  EXPECT_EQ(l2.victim_hits(), 1u);
  EXPECT_EQ(l2.cross_mode_rescues(), 1u);
}

TEST(VictimCache, BufferCapacityBounded) {
  VictimCacheL2 l2(cfg(/*entries=*/2));
  const std::uint64_t sets = (8ull << 10) / kLineSize;
  // Three victims through a 2-entry buffer: the first falls out.
  for (std::uint64_t i = 0; i < 4; ++i)
    l2.access(i * sets * kLineSize, AccessType::Read, Mode::User, i * 10);
  // Line 0 was evicted first and has fallen out of the buffer by now.
  l2.access(0, AccessType::Read, Mode::User, 100);
  EXPECT_EQ(l2.victim_hits(), 0u);
}

TEST(VictimCache, DirtyVictimFallingOutPaysDram) {
  VictimCacheL2 l2(cfg(/*entries=*/1));
  const std::uint64_t sets = (8ull << 10) / kLineSize;
  l2.access(0, AccessType::Write, Mode::User, 0);  // dirty
  const double dram0 = l2.energy().dram_nj;
  l2.access(sets * kLineSize, AccessType::Read, Mode::User, 10);   // victim 0
  l2.access(2 * sets * kLineSize, AccessType::Read, Mode::User, 20);  // pushes 0 out
  EXPECT_GT(l2.energy().dram_nj, dram0 + tech_constants::kDramAccessNj * 1.5);
}

TEST(VictimCache, CapacityIncludesBuffer) {
  VictimCacheL2 l2(cfg(64));
  EXPECT_EQ(l2.capacity_bytes(), (8ull << 10) + 64 * kLineSize);
  EXPECT_NE(l2.describe().find("victim buffer"), std::string::npos);
}

TEST(VictimCache, RecoversSomeInterferenceButNotTheEnergy) {
  // The comparison that motivates the paper's approach over victim caching.
  const Trace t = generate_app_trace(AppId::Launcher, 300'000, 13);
  const SimResult base = simulate(t, build_scheme(SchemeKind::BaselineSram));

  VictimCacheL2Config c;
  c.cache.name = "L2";
  c.cache.size_bytes = 2ull << 20;
  c.cache.assoc = 16;
  c.victim_entries = 64;
  VictimCacheL2 vcl2(c);
  const SimResult vc = simulate(t, vcl2);

  // The finding: at L2 scale a victim buffer recovers almost nothing —
  // victims of a 16-way 2 MB cache rarely re-reference within a few dozen
  // evictions (kernel streams wash the buffer out immediately).
  EXPECT_LT(vcl2.victim_hits(), vc.l2.total_misses() / 100);
  // And energy stays essentially at baseline level (full array still leaks).
  EXPECT_GT(vc.l2_energy.cache_nj(), 0.9 * base.l2_energy.cache_nj());

  const SimResult mrstt =
      simulate(t, build_scheme(SchemeKind::StaticPartMrstt));
  EXPECT_LT(mrstt.l2_energy.cache_nj(), 0.3 * vc.l2_energy.cache_nj());
}

}  // namespace
}  // namespace mobcache
