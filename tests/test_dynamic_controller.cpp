#include "core/dynamic_controller.hpp"

#include <gtest/gtest.h>

namespace mobcache {
namespace {

/// Demand whose hits saturate at `need` ways: hits grow linearly up to
/// `need`, flat afterwards (a working set of exactly `need` ways).
ModeDemand saturating_demand(std::uint32_t need, std::uint64_t per_way,
                             std::uint64_t misses, std::uint32_t depth = 16) {
  ModeDemand d;
  d.hits_with.resize(depth + 1, 0);
  for (std::uint32_t w = 1; w <= depth; ++w)
    d.hits_with[w] = per_way * std::min(w, need);
  d.monitor_accesses = d.hits_with[depth] + misses;
  d.accesses = d.monitor_accesses;
  d.misses = misses;
  d.epoch_cycles = 1'000'000;
  return d;
}

ControllerConfig base_cfg() {
  ControllerConfig c;
  c.total_ways = 16;
  c.min_ways_per_mode = 1;
  c.miss_slack = 0.05;
  c.max_step = 16;  // undamped unless a test opts in
  return c;
}

TEST(Controller, InitialAllocationIsEvenSplit) {
  DynamicPartitionController c(base_cfg());
  EXPECT_EQ(c.current().user_ways, 8u);
  EXPECT_EQ(c.current().kernel_ways, 8u);
}

TEST(Controller, ShrinksToSaturationPoint) {
  DynamicPartitionController c(base_cfg());
  const WayAllocation a =
      c.decide(saturating_demand(4, 1000, 100), saturating_demand(2, 500, 50));
  EXPECT_EQ(a.user_ways, 4u);
  EXPECT_EQ(a.kernel_ways, 2u);
}

TEST(Controller, MissSlackAllowsDroppingMarginalWays) {
  // Hits: 10000 at 4 ways, +2 more per way after that (weak tail). With
  // 1024 full misses and 5% slack (~51 hits of allowance), the 24 tail
  // hits are inside the slack, so the allocation collapses to 4 ways.
  ModeDemand d;
  d.hits_with.resize(17, 0);
  for (std::uint32_t w = 1; w <= 16; ++w)
    d.hits_with[w] = w <= 4 ? 2500ull * w : 10000ull + 2ull * (w - 4);
  d.monitor_accesses = d.hits_with[16] + 1024;
  d.accesses = d.monitor_accesses;
  d.epoch_cycles = 1'000'000;

  DynamicPartitionController c(base_cfg());
  const WayAllocation a = c.decide(d, saturating_demand(1, 10, 10));
  EXPECT_EQ(a.user_ways, 4u);
}

TEST(Controller, ZeroSlackKeepsEveryUsefulWay) {
  ControllerConfig cfg = base_cfg();
  cfg.miss_slack = 0.0;
  DynamicPartitionController c(cfg);
  ModeDemand d;
  d.hits_with.resize(17, 0);
  for (std::uint32_t w = 1; w <= 16; ++w) d.hits_with[w] = 100ull * w;
  d.monitor_accesses = d.hits_with[16] + 500;
  d.accesses = d.monitor_accesses;
  d.epoch_cycles = 1'000'000;
  const WayAllocation a = c.decide(d, saturating_demand(1, 10, 10));
  EXPECT_EQ(a.user_ways, 16u - a.kernel_ways)
      << "strictly increasing utility with zero slack wants all it can get";
}

TEST(Controller, MinWaysRespectedOnIdleMode) {
  ControllerConfig cfg = base_cfg();
  cfg.min_ways_per_mode = 2;
  DynamicPartitionController c(cfg);
  ModeDemand idle;  // no accesses at all
  idle.hits_with.resize(17, 0);
  const WayAllocation a = c.decide(saturating_demand(4, 100, 10), idle);
  EXPECT_EQ(a.kernel_ways, 2u);
}

TEST(Controller, OversubscriptionArbitratedByMarginalUtility) {
  // Both want 12 ways; user's marginal hits are much larger, so the kernel
  // side should absorb the shrink.
  DynamicPartitionController c(base_cfg());
  const WayAllocation a = c.decide(saturating_demand(12, 10'000, 100),
                                   saturating_demand(12, 10, 100));
  EXPECT_EQ(a.total(), 16u);
  EXPECT_GT(a.user_ways, a.kernel_ways);
}

TEST(Controller, DampingLimitsStepPerEpoch) {
  ControllerConfig cfg = base_cfg();
  cfg.max_step = 1;
  DynamicPartitionController c(cfg);  // starts 8/8
  const WayAllocation a =
      c.decide(saturating_demand(2, 1000, 10), saturating_demand(2, 1000, 10));
  EXPECT_EQ(a.user_ways, 7u);
  EXPECT_EQ(a.kernel_ways, 7u);
  const WayAllocation b =
      c.decide(saturating_demand(2, 1000, 10), saturating_demand(2, 1000, 10));
  EXPECT_EQ(b.user_ways, 6u);
  EXPECT_EQ(b.kernel_ways, 6u);
}

TEST(Controller, ConvergesUnderDamping) {
  ControllerConfig cfg = base_cfg();
  cfg.max_step = 1;
  DynamicPartitionController c(cfg);
  WayAllocation a = c.current();
  for (int i = 0; i < 20; ++i)
    a = c.decide(saturating_demand(5, 1000, 50), saturating_demand(2, 800, 40));
  EXPECT_EQ(a.user_ways, 5u);
  EXPECT_EQ(a.kernel_ways, 2u);
}

TEST(Controller, EnergyCriterionTrimsUnprofitableWays) {
  ControllerConfig cfg = base_cfg();
  cfg.miss_slack = 0.0;  // miss guard alone would keep everything
  cfg.use_energy_criterion = true;
  cfg.way_leak_mw = 20.0;          // 20 mW per way
  cfg.dram_nj_per_miss = 18.0;
  DynamicPartitionController c(cfg);

  // Each way earns 100 hits per 1 M-cycle epoch. A way's leakage is
  // 20 mW × 1 M cycles = 20 µJ; 100 hits save 1.8 µJ of DRAM — every
  // marginal way is unprofitable, so trim to the minimum.
  ModeDemand weak;
  weak.hits_with.resize(17, 0);
  for (std::uint32_t w = 1; w <= 16; ++w) weak.hits_with[w] = 100ull * w;
  weak.monitor_accesses = weak.hits_with[16] + 100;
  weak.accesses = weak.monitor_accesses;
  weak.epoch_cycles = 1'000'000;

  const WayAllocation a = c.decide(weak, weak);
  EXPECT_EQ(a.user_ways, 1u);
  EXPECT_EQ(a.kernel_ways, 1u);
}

TEST(Controller, HillClimbGrowsOnDegradationShrinksOnSchedule) {
  ControllerConfig cfg = base_cfg();
  cfg.monitor = MonitorKind::HillClimb;
  cfg.hill_tolerance = 0.05;
  cfg.hill_shrink_period = 2;
  DynamicPartitionController c(cfg);

  auto demand = [](std::uint64_t misses) {
    ModeDemand d;
    d.hits_with.resize(17, 0);
    d.accesses = 1000;
    d.misses = misses;
    return d;
  };

  // Epoch 1: establish best miss rate (10%). No shrink yet (period 2).
  WayAllocation a = c.decide(demand(100), demand(100));
  EXPECT_EQ(a.user_ways, 8u);
  // Epoch 2: stable → scheduled trial shrink.
  a = c.decide(demand(100), demand(100));
  EXPECT_EQ(a.user_ways, 7u);
  EXPECT_EQ(a.kernel_ways, 7u);
  // Epoch 3: big degradation → grow back.
  a = c.decide(demand(300), demand(100));
  EXPECT_EQ(a.user_ways, 8u);
}

TEST(Controller, TotalNeverExceedsBudget) {
  DynamicPartitionController c(base_cfg());
  for (std::uint32_t u = 1; u <= 16; ++u) {
    const WayAllocation a = c.decide(saturating_demand(u, 500, 100),
                                     saturating_demand(17 - u, 500, 100));
    EXPECT_LE(a.total(), 16u);
    EXPECT_GE(a.user_ways, 1u);
    EXPECT_GE(a.kernel_ways, 1u);
  }
}

}  // namespace
}  // namespace mobcache
