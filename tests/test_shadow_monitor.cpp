#include "cache/shadow_monitor.hpp"

#include <gtest/gtest.h>

namespace mobcache {
namespace {

TEST(ShadowMonitor, StackHitDepths) {
  // Unsampled shift (0) → every set monitored, scale factor 1.
  ShadowTagMonitor m(4, /*sample_shift=*/0, /*depth=*/4);
  const Addr a = 0x1000;
  const Addr b = 0x2000;
  const Addr c = 0x3000;

  m.access(a, 0);  // miss
  m.access(b, 0);  // miss
  m.access(c, 0);  // miss
  // Stack (MRU→LRU): c b a. Accessing a hits at depth 2.
  m.access(a, 0);
  EXPECT_EQ(m.hits_with_ways(2), 0u);
  EXPECT_EQ(m.hits_with_ways(3), 1u);

  // a is MRU now; accessing it again hits at depth 0.
  m.access(a, 0);
  EXPECT_EQ(m.hits_with_ways(1), 1u);
  EXPECT_EQ(m.hits_with_ways(4), 2u);
}

TEST(ShadowMonitor, HitsMonotoneInWays) {
  ShadowTagMonitor m(8, 0, 8);
  for (int round = 0; round < 3; ++round) {
    for (Addr i = 0; i < 6; ++i) m.access(0x100 * (i + 1), 2);
  }
  std::uint64_t prev = 0;
  for (std::uint32_t w = 1; w <= 8; ++w) {
    EXPECT_GE(m.hits_with_ways(w), prev);
    prev = m.hits_with_ways(w);
  }
}

TEST(ShadowMonitor, StackDepthBounded) {
  ShadowTagMonitor m(2, 0, 2);
  // Three distinct lines through a 2-deep stack: the first falls out.
  m.access(0x100, 0);
  m.access(0x200, 0);
  m.access(0x300, 0);
  m.access(0x100, 0);  // must be a miss (fell off)
  EXPECT_EQ(m.hits_with_ways(2), 0u);
}

TEST(ShadowMonitor, SamplingScalesCounts) {
  // shift=2 → 1 in 4 sets sampled, counts scaled ×4.
  ShadowTagMonitor m(8, 2, 4);
  m.access(0x40, /*set=*/0);  // sampled
  m.access(0x40, /*set=*/0);  // hit at depth 0
  m.access(0x80, /*set=*/1);  // not sampled
  EXPECT_EQ(m.hits_with_ways(4), 4u);  // one hit × scale 4
  EXPECT_EQ(m.observed_accesses(), 8u);  // two sampled accesses × 4
}

TEST(ShadowMonitor, UnsampledSetsIgnored) {
  ShadowTagMonitor m(8, 3, 4);  // only set 0 sampled out of each 8
  for (std::uint32_t s = 1; s < 8; ++s) m.access(0x1000 + s, s);
  EXPECT_EQ(m.observed_accesses(), 0u);
}

TEST(ShadowMonitor, NewEpochClearsCountersKeepsStacks) {
  ShadowTagMonitor m(4, 0, 4);
  m.access(0x500, 0);
  m.access(0x500, 0);
  EXPECT_EQ(m.hits_with_ways(4), 1u);

  m.new_epoch();
  EXPECT_EQ(m.hits_with_ways(4), 0u);
  EXPECT_EQ(m.observed_accesses(), 0u);

  // The stack stayed warm: the very next access to the same line hits.
  m.access(0x500, 0);
  EXPECT_EQ(m.hits_with_ways(1), 1u);
}

TEST(ShadowMonitor, DepthClampInQuery) {
  ShadowTagMonitor m(4, 0, 4);
  m.access(0x1, 0);
  m.access(0x1, 0);
  EXPECT_EQ(m.hits_with_ways(100), m.hits_with_ways(4));
}

}  // namespace
}  // namespace mobcache
