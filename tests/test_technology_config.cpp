#include <gtest/gtest.h>

#include "core/scheme.hpp"
#include "energy/energy_accountant.hpp"
#include "energy/technology.hpp"
#include "sim/simulator.hpp"
#include "workload/suite.hpp"

namespace mobcache {
namespace {

TEST(TechnologyConfig, DefaultsMirrorConstants) {
  const TechnologyConfig c;
  EXPECT_DOUBLE_EQ(c.sram_leak_mw_per_kb, tech_constants::kSramLeakMwPerKb);
  EXPECT_DOUBLE_EQ(c.stt_leak_factor, tech_constants::kSttLeakFactor);
  EXPECT_DOUBLE_EQ(c.dram_access_nj, tech_constants::kDramAccessNj);
}

TEST(TechnologyConfig, ScopedOverrideAppliesAndRestores) {
  const double base_leak = make_sram(1ull << 20).leakage_mw;
  {
    TechnologyConfig c;
    c.sram_leak_mw_per_kb *= 3;
    ScopedTechnology scope(c);
    EXPECT_NEAR(make_sram(1ull << 20).leakage_mw, 3 * base_leak, 1e-9);
  }
  EXPECT_NEAR(make_sram(1ull << 20).leakage_mw, base_leak, 1e-12);
}

TEST(TechnologyConfig, NestedScopesUnwindCorrectly) {
  const double base = technology().dram_access_nj;
  TechnologyConfig a;
  a.dram_access_nj = 100;
  {
    ScopedTechnology sa(a);
    EXPECT_DOUBLE_EQ(technology().dram_access_nj, 100);
    TechnologyConfig b;
    b.dram_access_nj = 200;
    {
      ScopedTechnology sb(b);
      EXPECT_DOUBLE_EQ(technology().dram_access_nj, 200);
    }
    EXPECT_DOUBLE_EQ(technology().dram_access_nj, 100);
  }
  EXPECT_DOUBLE_EQ(technology().dram_access_nj, base);
}

TEST(TechnologyConfig, AccountantUsesActiveDramEnergy) {
  TechnologyConfig c;
  c.dram_access_nj = 5.0;
  ScopedTechnology scope(c);
  EnergyAccountant acct;
  acct.add_dram(4);
  EXPECT_DOUBLE_EQ(acct.breakdown().dram_nj, 20.0);
}

TEST(TechnologyConfig, SttWriteScalesWithOverride) {
  TechnologyConfig c;
  c.stt_write_nj_hi_2mb = 4.0;
  ScopedTechnology scope(c);
  EXPECT_NEAR(make_sttram(2ull << 20, RetentionClass::Hi).write_energy_nj,
              4.0, 1e-9);
}

TEST(TechnologyConfig, EndToEndEnergyRespondsToLeakageOverride) {
  const Trace t = generate_app_trace(AppId::AudioPlayer, 100'000, 9);
  const SimResult nominal =
      simulate(t, build_scheme(SchemeKind::BaselineSram));

  TechnologyConfig c;
  c.sram_leak_mw_per_kb *= 2;
  ScopedTechnology scope(c);
  const SimResult doubled =
      simulate(t, build_scheme(SchemeKind::BaselineSram));
  EXPECT_NEAR(doubled.l2_energy.leakage_nj,
              2 * nominal.l2_energy.leakage_nj,
              nominal.l2_energy.leakage_nj * 0.01);
  // Timing must be unaffected by energy constants.
  EXPECT_EQ(doubled.cycles, nominal.cycles);
}

TEST(TechnologyConfig, ConclusionSurvivesPerturbation) {
  // The core claim (partitioned STT ≪ baseline) must hold even with the
  // STT leak factor doubled — pinned here so E13 can't silently regress.
  const Trace t = generate_app_trace(AppId::Launcher, 150'000, 9);
  TechnologyConfig c;
  c.stt_leak_factor *= 2;
  ScopedTechnology scope(c);
  const SimResult base = simulate(t, build_scheme(SchemeKind::BaselineSram));
  const SimResult mrstt =
      simulate(t, build_scheme(SchemeKind::StaticPartMrstt));
  EXPECT_LT(mrstt.l2_energy.cache_nj(), 0.5 * base.l2_energy.cache_nj());
}

}  // namespace
}  // namespace mobcache
