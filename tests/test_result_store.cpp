#include "exp/result_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "energy/technology.hpp"
#include "exp/parallel.hpp"
#include "exp/runner.hpp"
#include "workload/suite.hpp"

namespace mobcache {
namespace {

namespace fs = std::filesystem;

/// Per-test store directory; removed on teardown. gtest_discover_tests runs
/// each TEST in its own process, so a name derived from the test name is
/// collision-free even under ctest -j.
class ResultStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("mobcache_store_") + info->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }

  fs::path dir_;
};

/// A SimResult exercising the awkward corners of the record format: doubles
/// that do not round-trip at low precision, zeros, and large counters.
SimResult sample_result() {
  SimResult r;
  r.workload = "launcher";
  r.scheme = "SP-MRSTT";
  r.records = 123456789;
  r.cycles = 987654321;
  r.cpi = 1.0 / 3.0;
  r.l1i.accesses[0] = 11;
  r.l1d.accesses[1] = 22;
  r.l2.accesses[0] = 1000;
  r.l2.hits[0] = 900;
  r.l2.expired_blocks = 7;
  r.l2_energy.leakage_nj = 0.1;  // not exactly representable
  r.l2_energy.read_nj = 1e-17;
  r.l2_energy.write_nj = 12345.6789012345678;
  r.l2_energy.dram_nj = 3.0e17;
  r.l1_energy_nj = 2.5;
  r.l2_capacity_bytes = 2ull << 20;
  r.l2_avg_enabled_bytes = 1310720.5;
  r.l2_quarantined_ways = 3;
  r.stall_l2_hit_cycles = 42;
  r.stall_l2_miss_cycles = 4242;
  r.prefetches_issued = 5;
  return r;
}

void expect_equal(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.scheme, b.scheme);
  EXPECT_EQ(a.records, b.records);
  EXPECT_EQ(a.cycles, b.cycles);
  // Bit-exact, not approximate: resumed sweeps must be byte-identical.
  EXPECT_EQ(a.cpi, b.cpi);
  EXPECT_EQ(a.l1i.accesses[0], b.l1i.accesses[0]);
  EXPECT_EQ(a.l1d.accesses[1], b.l1d.accesses[1]);
  EXPECT_EQ(a.l2.accesses[0], b.l2.accesses[0]);
  EXPECT_EQ(a.l2.hits[0], b.l2.hits[0]);
  EXPECT_EQ(a.l2.expired_blocks, b.l2.expired_blocks);
  EXPECT_EQ(a.l2_energy.leakage_nj, b.l2_energy.leakage_nj);
  EXPECT_EQ(a.l2_energy.read_nj, b.l2_energy.read_nj);
  EXPECT_EQ(a.l2_energy.write_nj, b.l2_energy.write_nj);
  EXPECT_EQ(a.l2_energy.dram_nj, b.l2_energy.dram_nj);
  EXPECT_EQ(a.l1_energy_nj, b.l1_energy_nj);
  EXPECT_EQ(a.l2_capacity_bytes, b.l2_capacity_bytes);
  EXPECT_EQ(a.l2_avg_enabled_bytes, b.l2_avg_enabled_bytes);
  EXPECT_EQ(a.l2_quarantined_ways, b.l2_quarantined_ways);
  EXPECT_EQ(a.stall_l2_hit_cycles, b.stall_l2_hit_cycles);
  EXPECT_EQ(a.stall_l2_miss_cycles, b.stall_l2_miss_cycles);
  EXPECT_EQ(a.prefetches_issued, b.prefetches_issued);
}

TEST(ContentHasherTest, StableAndOrderSensitive) {
  const std::uint64_t a =
      ContentHasher().mix(std::uint64_t{1}).mix(std::uint64_t{2}).digest();
  const std::uint64_t b =
      ContentHasher().mix(std::uint64_t{1}).mix(std::uint64_t{2}).digest();
  const std::uint64_t c =
      ContentHasher().mix(std::uint64_t{2}).mix(std::uint64_t{1}).digest();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // Length-prefixed strings: ("ab","c") must not collide with ("a","bc").
  EXPECT_NE(
      ContentHasher().mix(std::string("ab")).mix(std::string("c")).digest(),
      ContentHasher().mix(std::string("a")).mix(std::string("bc")).digest());
  // Doubles hash by bit pattern, so the sign of zero matters.
  EXPECT_NE(ContentHasher().mix(0.0).digest(),
            ContentHasher().mix(-0.0).digest());
}

TEST(ContentHasherTest, KeyComponentsAllMatter) {
  const std::uint64_t base = result_point_key(1, 2, 3, 4, 5);
  EXPECT_EQ(base, result_point_key(1, 2, 3, 4, 5));
  EXPECT_NE(base, result_point_key(9, 2, 3, 4, 5));
  EXPECT_NE(base, result_point_key(1, 9, 3, 4, 5));
  EXPECT_NE(base, result_point_key(1, 2, 9, 4, 5));
  EXPECT_NE(base, result_point_key(1, 2, 3, 9, 5));
  EXPECT_NE(base, result_point_key(1, 2, 3, 4, 9));
}

TEST(ContentHasherTest, CacheConfigNameIsCosmetic) {
  CacheConfig a;
  CacheConfig b = a;
  b.name = "renamed";
  EXPECT_EQ(hash_cache_config(a), hash_cache_config(b));
  b.size_bytes *= 2;
  EXPECT_NE(hash_cache_config(a), hash_cache_config(b));
}

TEST(ContentHasherTest, SchemeParamsFaultFieldsAreKeyed) {
  SchemeParams a;
  SchemeParams b = a;
  EXPECT_EQ(hash_scheme_params(a), hash_scheme_params(b));
  b.fault.seed += 1;
  EXPECT_NE(hash_scheme_params(a), hash_scheme_params(b));
}

TEST(ContentHasherTest, TechnologyPerturbationChangesKey) {
  TechnologyConfig a;
  TechnologyConfig b = a;
  EXPECT_EQ(hash_technology(a), hash_technology(b));
  b.stt_leak_factor *= 2.0;
  EXPECT_NE(hash_technology(a), hash_technology(b));
}

TEST(ContentHasherTest, TraceFingerprintSeesEveryRecord) {
  const Trace t1 = generate_app_trace(AppId::Launcher, 2000, 1);
  const Trace t2 = generate_app_trace(AppId::Launcher, 2000, 1);
  const Trace t3 = generate_app_trace(AppId::Launcher, 2000, 2);
  // Note: nearby target lengths can land on the same episode boundary and
  // generate the *identical* trace, so the length probe doubles the target.
  const Trace t4 = generate_app_trace(AppId::Launcher, 4000, 1);
  EXPECT_EQ(hash_trace(t1), hash_trace(t2));
  EXPECT_NE(hash_trace(t1), hash_trace(t3));
  EXPECT_NE(hash_trace(t1), hash_trace(t4));
}

TEST(RecordFormat, ExactRoundTrip) {
  const SimResult r = sample_result();
  const std::string json = result_to_record_json(r);
  const std::optional<SimResult> back = result_from_record_json(json);
  ASSERT_TRUE(back.has_value());
  expect_equal(r, *back);
}

TEST(RecordFormat, RejectsTruncationAndGarbage) {
  const std::string json = result_to_record_json(sample_result());
  EXPECT_FALSE(result_from_record_json("").has_value());
  EXPECT_FALSE(result_from_record_json("{}").has_value());
  EXPECT_FALSE(
      result_from_record_json(json.substr(0, json.size() / 2)).has_value());
}

TEST_F(ResultStoreTest, StoreThenLookupAcrossReopen) {
  const SimResult r = sample_result();
  {
    ResultStore store(dir());
    EXPECT_FALSE(store.lookup(42).has_value());
    store.store(42, r);
    const auto hit = store.lookup(42);
    ASSERT_TRUE(hit.has_value());
    expect_equal(r, *hit);
    EXPECT_EQ(store.stats().misses, 1u);
    EXPECT_EQ(store.stats().hits, 1u);
    EXPECT_EQ(store.stats().stores, 1u);
  }
  // A fresh process (modeled by a fresh object) must see the record.
  ResultStore reopened(dir());
  EXPECT_EQ(reopened.stats().loaded, 1u);
  EXPECT_EQ(reopened.stats().corrupt_skipped, 0u);
  const auto hit = reopened.lookup(42);
  ASSERT_TRUE(hit.has_value());
  expect_equal(r, *hit);
}

TEST_F(ResultStoreTest, NoTempLeftoversAndStrayTempsAreCleaned) {
  {
    ResultStore store(dir());
    store.store(1, sample_result());
    store.store(2, sample_result());
  }
  for (const auto& e : fs::directory_iterator(dir()))
    EXPECT_EQ(e.path().filename().string().rfind(".tmp-", 0),
              std::string::npos)
        << "temp file survived: " << e.path();

  // A crash mid-write leaves a .tmp- file; opening the store removes it.
  std::ofstream(fs::path(dir()) / ".tmp-crashed") << "partial";
  ResultStore reopened(dir());
  EXPECT_FALSE(fs::exists(fs::path(dir()) / ".tmp-crashed"));
  EXPECT_EQ(reopened.stats().loaded, 2u);
}

TEST_F(ResultStoreTest, CorruptRecordIsSkippedAndRecomputed) {
  std::string victim;
  {
    ResultStore store(dir());
    store.store(7, sample_result());
    store.store(8, sample_result());
  }
  for (const auto& e : fs::directory_iterator(dir())) {
    victim = e.path().string();
    break;
  }
  ASSERT_FALSE(victim.empty());

  // Flip one payload byte: the checksum must reject the record.
  std::string contents;
  {
    std::ifstream in(victim);
    std::stringstream ss;
    ss << in.rdbuf();
    contents = ss.str();
  }
  contents[contents.size() / 2] ^= 0x01;
  std::ofstream(victim, std::ios::trunc) << contents;

  ResultStore store(dir());
  EXPECT_EQ(store.stats().corrupt_skipped, 1u);
  EXPECT_EQ(store.stats().loaded, 1u);
  // The corrupt key misses; storing it again repairs the store.
  const bool hit7 = store.lookup(7).has_value();
  const bool hit8 = store.lookup(8).has_value();
  EXPECT_NE(hit7, hit8);  // exactly one survived
  store.store(hit7 ? 8 : 7, sample_result());
  ResultStore repaired(dir());
  EXPECT_EQ(repaired.stats().loaded, 2u);
  EXPECT_EQ(repaired.stats().corrupt_skipped, 0u);
}

TEST_F(ResultStoreTest, TruncatedRecordIsCorrupt) {
  {
    ResultStore store(dir());
    store.store(9, sample_result());
  }
  std::string path;
  for (const auto& e : fs::directory_iterator(dir())) path = e.path().string();
  const auto size = fs::file_size(path);
  fs::resize_file(path, size - 10);  // torn write: tail lost

  ResultStore store(dir());
  EXPECT_EQ(store.stats().corrupt_skipped, 1u);
  EXPECT_FALSE(store.lookup(9).has_value());
}

TEST_F(ResultStoreTest, MemoizedMapServesHitsAndPersistsMisses) {
  const std::vector<std::uint64_t> keys = {101, 102, 103, 104};
  int computed = 0;
  const auto fn = [&](std::size_t i) {
    ++computed;
    SimResult r = sample_result();
    r.cycles = 1000 + i;
    return r;
  };

  SweepExecutor ex(1);
  ResultStore store(dir());
  const std::vector<SimResult> cold = memoized_map(ex, &store, keys, fn);
  ASSERT_EQ(cold.size(), 4u);
  EXPECT_EQ(computed, 4);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(cold[i].cycles, 1000 + i);

  // Warm pass through a reopened store: nothing recomputes, results match.
  computed = 0;
  ResultStore warm_store(dir());
  const std::vector<SimResult> warm = memoized_map(ex, &warm_store, keys, fn);
  EXPECT_EQ(computed, 0);
  for (std::size_t i = 0; i < 4; ++i)
    expect_equal(cold[i], warm[i]);
  EXPECT_EQ(warm_store.stats().hits, 4u);
}

TEST_F(ResultStoreTest, KilledSweepResumesByteIdentical) {
  // The kill-and-resume contract from docs/RESULT_STORE.md: a sweep that
  // dies mid-run (here: after persisting a prefix of its points, with one
  // record additionally corrupted on disk) must, when resumed, produce
  // records byte-identical to an uninterrupted cold run.
  ExperimentRunner runner({AppId::Launcher, AppId::Email}, 5000, 42);

  const fs::path cold_dir = fs::path(dir()) / "cold";
  const fs::path resumed_dir = fs::path(dir()) / "resumed";

  // Uninterrupted reference run.
  {
    ResultStore store(cold_dir.string());
    runner.result_store = &store;
    (void)runner.run_schemes(
        {SchemeKind::BaselineSram, SchemeKind::StaticPartMrstt});
  }

  // "Killed" run: same sweep, but afterwards delete one record (a point the
  // process never got to) and corrupt another (a torn write at kill time).
  {
    ResultStore store(resumed_dir.string());
    runner.result_store = &store;
    (void)runner.run_schemes(
        {SchemeKind::BaselineSram, SchemeKind::StaticPartMrstt});
  }
  std::vector<fs::path> records;
  for (const auto& e : fs::directory_iterator(resumed_dir))
    records.push_back(e.path());
  std::sort(records.begin(), records.end());
  ASSERT_GE(records.size(), 3u);
  fs::remove(records[0]);
  fs::resize_file(records[1], fs::file_size(records[1]) / 2);

  // Resume: only the missing + corrupt points recompute.
  {
    ResultStore store(resumed_dir.string());
    EXPECT_EQ(store.stats().corrupt_skipped, 1u);
    runner.result_store = &store;
    (void)runner.run_schemes(
        {SchemeKind::BaselineSram, SchemeKind::StaticPartMrstt});
    EXPECT_EQ(store.stats().hits, records.size() - 2);
    EXPECT_EQ(store.stats().stores, 2u);
  }
  runner.result_store = nullptr;

  // Every record file must now match the cold run byte for byte.
  auto slurp = [](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  std::size_t compared = 0;
  for (const auto& e : fs::directory_iterator(cold_dir)) {
    const fs::path resumed = resumed_dir / e.path().filename();
    ASSERT_TRUE(fs::exists(resumed)) << resumed;
    EXPECT_EQ(slurp(e.path()), slurp(resumed)) << e.path().filename();
    ++compared;
  }
  EXPECT_EQ(compared, records.size());
}

TEST_F(ResultStoreTest, PoisonRecordRoundTripsAcrossReopen) {
  {
    ResultStore store(dir());
    store.store_failure(777, {"numeric", "lane cpi is not finite"});
    EXPECT_EQ(store.stats().poison_stores, 1u);
    // A poisoned key serves no value...
    EXPECT_FALSE(store.lookup(777).has_value());
    // ...but does serve its failure.
    const auto f = store.lookup_failure(777);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->error_type, "numeric");
    EXPECT_EQ(f->message, "lane cpi is not finite");
  }
  ResultStore reopened(dir());
  EXPECT_EQ(reopened.stats().poisoned_loaded, 1u);
  EXPECT_EQ(reopened.stats().corrupt_skipped, 0u);
  const auto f = reopened.lookup_failure(777);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->error_type, "numeric");
  EXPECT_EQ(reopened.stats().poison_hits, 1u);
}

TEST_F(ResultStoreTest, ValueStoreRehabilitatesAPoisonedKey) {
  ResultStore store(dir());
  store.store_failure(5, {"deadline", "too slow"});
  store.store(5, sample_result());
  EXPECT_FALSE(store.lookup_failure(5).has_value());
  EXPECT_TRUE(store.lookup(5).has_value());
  // And the rehabilitation survives reopen: the value record atomically
  // replaced the poison record on disk.
  ResultStore reopened(dir());
  EXPECT_EQ(reopened.stats().poisoned_loaded, 0u);
  EXPECT_TRUE(reopened.lookup(5).has_value());
}

TEST_F(ResultStoreTest, MemoizedMapOutcomesQuarantinesKnownBadPoints) {
  const std::vector<std::uint64_t> keys = {11, 12, 13};
  int computed = 0;
  const auto fn = [&](std::size_t i) -> SimResult {
    ++computed;
    if (i == 1) throw NumericError("injected");
    SimResult r = sample_result();
    r.cycles = 2000 + i;
    return r;
  };

  SweepExecutor ex(1);
  {
    ResultStore store(dir());
    const auto cold = memoized_map_outcomes(ex, &store, keys, fn);
    ASSERT_EQ(cold.size(), 3u);
    EXPECT_EQ(computed, 3);
    EXPECT_TRUE(cold[0].ok());
    ASSERT_FALSE(cold[1].ok());
    EXPECT_EQ(cold[1].failure->error_type, "numeric");
    EXPECT_FALSE(cold[1].failure->quarantined);  // fresh failure, not cached
    EXPECT_TRUE(cold[2].ok());
  }

  // Resume against the same directory: values hit, the bad point is served
  // from its poison record — fn must not run at all.
  computed = 0;
  ResultStore warm(dir());
  const auto resumed = memoized_map_outcomes(ex, &warm, keys, fn);
  EXPECT_EQ(computed, 0);
  EXPECT_TRUE(resumed[0].ok());
  ASSERT_FALSE(resumed[1].ok());
  EXPECT_TRUE(resumed[1].failure->quarantined);
  EXPECT_EQ(resumed[1].failure->index, 1u);
  EXPECT_EQ(resumed[1].failure->error_type, "numeric");
  EXPECT_EQ(resumed[1].failure->message, "injected");
  EXPECT_EQ(warm.stats().hits, 2u);
  EXPECT_EQ(warm.stats().poison_hits, 1u);
}

TEST_F(ResultStoreTest, RetryFailedReRunsQuarantinedPoints) {
  const std::vector<std::uint64_t> keys = {21};
  bool fail = true;
  int computed = 0;
  const auto fn = [&](std::size_t) -> SimResult {
    ++computed;
    if (fail) throw NumericError("transient");
    return sample_result();
  };

  SweepExecutor ex(1);
  {
    ResultStore store(dir());
    (void)memoized_map_outcomes(ex, &store, keys, fn);
    EXPECT_EQ(store.stats().poison_stores, 1u);
  }

  // The flaky cause is fixed; --retry-failed bypasses the quarantine and a
  // successful re-run replaces the poison record with a value for good.
  fail = false;
  computed = 0;
  {
    ResultStore store(dir());
    store.set_retry_failed(true);
    const auto out = memoized_map_outcomes(ex, &store, keys, fn);
    EXPECT_EQ(computed, 1);
    EXPECT_TRUE(out[0].ok());
  }
  computed = 0;
  ResultStore healed(dir());
  const auto warm = memoized_map_outcomes(ex, &healed, keys, fn);
  EXPECT_EQ(computed, 0);
  EXPECT_TRUE(warm[0].ok());
  EXPECT_FALSE(warm[0].failure.has_value());
  EXPECT_EQ(healed.stats().hits, 1u);
}

TEST_F(ResultStoreTest, CancelledSweepNeverPoisonsAndResumesByteIdentical) {
  // The SIGTERM-drain contract: cancellation mid-sweep persists the
  // completed prefix, poisons nothing, and a resumed run fills in the rest
  // so the store ends byte-identical to an uninterrupted one.
  const std::vector<std::uint64_t> keys = {31, 32, 33, 34, 35};
  const auto fn = [&](std::size_t i) {
    SimResult r = sample_result();
    r.cycles = 3000 + i;
    return r;
  };
  const auto cancel_after_two = [&](std::size_t i) {
    // Requested *during* point 1: the point still completes and persists;
    // the serial executor's pre-point check then stops 2..4 from running.
    if (i == 1) global_cancel_token().request_cancel();
    return fn(i);
  };

  const fs::path cold_dir = fs::path(dir()) / "cold";
  const fs::path resumed_dir = fs::path(dir()) / "resumed";
  SweepExecutor ex(1);
  {
    ResultStore store(cold_dir.string());
    (void)memoized_map_outcomes(ex, &store, keys, fn);
  }
  {
    ResultStore store(resumed_dir.string());
    EXPECT_THROW(memoized_map_outcomes(ex, &store, keys, cancel_after_two),
                 CancelledError);
    global_cancel_token().reset();
    // The serial path checks the token before each point: points 0 and 1
    // completed and were persisted, 2..4 never ran and were not poisoned.
    EXPECT_EQ(store.stats().stores, 2u);
    EXPECT_EQ(store.stats().poison_stores, 0u);
  }
  {
    ResultStore store(resumed_dir.string());
    EXPECT_EQ(store.stats().poisoned_loaded, 0u);
    const auto out = memoized_map_outcomes(ex, &store, keys, fn);
    EXPECT_EQ(store.stats().hits, 2u);
    for (const auto& o : out) EXPECT_TRUE(o.ok());
  }
  auto slurp = [](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  std::size_t compared = 0;
  for (const auto& e : fs::directory_iterator(cold_dir)) {
    const fs::path resumed = resumed_dir / e.path().filename();
    ASSERT_TRUE(fs::exists(resumed)) << resumed;
    EXPECT_EQ(slurp(e.path()), slurp(resumed)) << e.path().filename();
    ++compared;
  }
  EXPECT_EQ(compared, keys.size());
}

TEST_F(ResultStoreTest, RunnerMemoizationMatchesDirectRun) {
  // Served-from-store results must be indistinguishable from computed ones
  // at the SimResult level, not just on headline numbers.
  ExperimentRunner runner({AppId::Launcher}, 4000, 7);
  const SchemeSuiteResult direct = runner.run_scheme(SchemeKind::DynamicStt);

  ResultStore store(dir());
  runner.result_store = &store;
  const SchemeSuiteResult cold = runner.run_scheme(SchemeKind::DynamicStt);
  const SchemeSuiteResult warm = runner.run_scheme(SchemeKind::DynamicStt);
  runner.result_store = nullptr;

  ASSERT_EQ(direct.per_workload.size(), warm.per_workload.size());
  for (std::size_t i = 0; i < direct.per_workload.size(); ++i) {
    expect_equal(direct.per_workload[i], cold.per_workload[i]);
    expect_equal(direct.per_workload[i], warm.per_workload[i]);
  }
  EXPECT_GT(store.stats().hits, 0u);
}

TEST_F(ResultStoreTest, TelemetryRunsAreNotMemoized) {
  // A cached SimResult cannot replay telemetry events, so runs with a
  // telemetry side channel must bypass the store entirely.
  ExperimentRunner runner({AppId::Launcher}, 2000, 7);
  ResultStore store(dir());
  runner.result_store = &store;
  runner.collect_telemetry = true;
  (void)runner.run_scheme(SchemeKind::BaselineSram);
  EXPECT_EQ(store.stats().hits + store.stats().misses, 0u);
  EXPECT_EQ(store.stats().stores, 0u);
}

}  // namespace
}  // namespace mobcache
