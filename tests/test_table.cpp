#include "common/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace mobcache {
namespace {

TEST(Table, RenderAlignsColumns) {
  TablePrinter t({"name", "v"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.render();
  // Every line has the same length when columns are padded.
  std::size_t first_len = out.find('\n');
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t nl = out.find('\n', pos);
    ASSERT_NE(nl, std::string::npos);
    EXPECT_EQ(nl - pos, first_len);
    pos = nl + 1;
  }
  EXPECT_NE(out.find("longer"), std::string::npos);
}

TEST(Table, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_EQ(t.column_count(), 3u);
  // Must not throw and must render all columns.
  const std::string out = t.render();
  EXPECT_NE(out.find("| x"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  TablePrinter t({"k", "v"});
  t.add_row({"plain", "a,b"});
  t.add_row({"quote\"inner", "multi\nline"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inner\""), std::string::npos);
  EXPECT_NE(csv.find("\"multi\nline\""), std::string::npos);
  EXPECT_EQ(csv.find("\"plain\""), std::string::npos);  // no spurious quoting
}

TEST(Table, WriteCsvRoundtrip) {
  const auto dir = std::filesystem::temp_directory_path() / "mobcache_test";
  const std::string path = (dir / "t.csv").string();
  std::filesystem::remove_all(dir);

  TablePrinter t({"h1", "h2"});
  t.add_row({"r1", "r2"});
  ASSERT_TRUE(t.write_csv(path));  // creates the directory

  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "h1,h2");
  std::getline(f, line);
  EXPECT_EQ(line, "r1,r2");
  std::filesystem::remove_all(dir);
}

TEST(Format, Count) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1234567), "1,234,567");
  EXPECT_EQ(format_count(1000000000ull), "1,000,000,000");
}

TEST(Format, Double) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 0), "1");
  EXPECT_EQ(format_double(0.5), "0.500");
}

}  // namespace
}  // namespace mobcache
