/// \file test_integration.cpp
/// End-to-end assertions that the reproduced system exhibits the paper's
/// qualitative results on real (generated) workloads. These are the claims
/// EXPERIMENTS.md reports quantitatively; here we pin the orderings so a
/// regression in any module that breaks the story fails CI.

#include <gtest/gtest.h>

#include "exp/runner.hpp"

namespace mobcache {
namespace {

/// One shared fixture run (expensive) reused by every assertion.
class PaperStory : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    runner_ = new ExperimentRunner(
        {AppId::Launcher, AppId::Browser, AppId::AudioPlayer, AppId::Email},
        400'000, 42);
    results_ = new std::vector<SchemeSuiteResult>(runner_->run_headline());
  }
  static void TearDownTestSuite() {
    delete results_;
    delete runner_;
    results_ = nullptr;
    runner_ = nullptr;
  }

  static const SchemeSuiteResult& of(SchemeKind k) {
    for (const auto& r : *results_)
      if (r.kind == k) return r;
    throw std::logic_error("scheme missing");
  }

  static ExperimentRunner* runner_;
  static std::vector<SchemeSuiteResult>* results_;
};

ExperimentRunner* PaperStory::runner_ = nullptr;
std::vector<SchemeSuiteResult>* PaperStory::results_ = nullptr;

TEST_F(PaperStory, KernelShareMotivation) {
  // >40%-ish of L2 accesses are kernel in this interactive sub-suite.
  const auto& base = of(SchemeKind::BaselineSram);
  for (const SimResult& r : base.per_workload)
    EXPECT_GT(r.l2_kernel_fraction(), 0.33) << r.workload;
}

TEST_F(PaperStory, NaiveShrinkIsACatastrophe) {
  const auto& shrunk = of(SchemeKind::ShrunkSram);
  EXPECT_GT(shrunk.avg_miss_rate,
            of(SchemeKind::BaselineSram).avg_miss_rate + 0.05);
  EXPECT_GT(shrunk.norm_exec_time, 1.15);
}

TEST_F(PaperStory, StaticPartitionKeepsMissRateAtFractionOfCapacity) {
  const auto& base = of(SchemeKind::BaselineSram);
  const auto& sp = of(SchemeKind::StaticPartSram);
  // Far less capacity...
  EXPECT_LT(sp.per_workload[0].l2_capacity_bytes,
            (2ull << 20) * 3 / 4);
  // ...similar miss rate (within 3 percentage points)...
  EXPECT_LT(sp.avg_miss_rate, base.avg_miss_rate + 0.03);
  // ...small performance cost.
  EXPECT_LT(sp.norm_exec_time, 1.06);
  // ...and real energy savings already in SRAM.
  EXPECT_LT(sp.norm_cache_energy, 0.8);
}

TEST_F(PaperStory, MultiRetentionSttMultipliesStaticSavings) {
  const auto& sp = of(SchemeKind::StaticPartSram);
  const auto& mrstt = of(SchemeKind::StaticPartMrstt);
  EXPECT_LT(mrstt.norm_cache_energy, sp.norm_cache_energy * 0.5);
  // The abstract's claim: static technique cuts cache energy by ~75%.
  EXPECT_LT(mrstt.norm_cache_energy, 0.35);
  EXPECT_LT(mrstt.norm_exec_time, 1.10);
}

TEST_F(PaperStory, DynamicSttIsTheMaximalSavingsDesign) {
  const auto& dpstt = of(SchemeKind::DynamicStt);
  // The abstract's claim: ~85% cache-energy reduction, ~3% loss (we accept
  // up to 10% on this reduced sub-suite).
  EXPECT_LT(dpstt.norm_cache_energy, 0.30);
  EXPECT_LT(dpstt.norm_exec_time, 1.10);
  // Dynamic must save at least as much energy as every SRAM design.
  EXPECT_LT(dpstt.norm_cache_energy,
            of(SchemeKind::StaticPartSram).norm_cache_energy);
  EXPECT_LT(dpstt.norm_cache_energy,
            of(SchemeKind::SharedStt).norm_cache_energy);
}

TEST_F(PaperStory, DynamicAdaptsBelowNominalCapacity) {
  const auto& dp = of(SchemeKind::DynamicStt);
  for (const SimResult& r : dp.per_workload) {
    EXPECT_LT(r.l2_avg_enabled_bytes,
              static_cast<double>(r.l2_capacity_bytes))
        << r.workload;
  }
}

TEST_F(PaperStory, SharedSttAloneIsNotEnough) {
  // Replacing SRAM with STT-RAM without partitioning leaves most of the
  // possible savings on the table and costs more time than SP.
  const auto& shared_stt = of(SchemeKind::SharedStt);
  const auto& mrstt = of(SchemeKind::StaticPartMrstt);
  EXPECT_GT(shared_stt.norm_cache_energy, mrstt.norm_cache_energy * 1.5);
}

TEST_F(PaperStory, PartitioningRemovesCrossModeEvictions) {
  const auto& base = of(SchemeKind::BaselineSram);
  const auto& sp = of(SchemeKind::StaticPartSram);
  std::uint64_t base_cross = 0;
  std::uint64_t sp_cross = 0;
  for (const SimResult& r : base.per_workload) base_cross += r.l2.cross_mode_evictions;
  for (const SimResult& r : sp.per_workload) sp_cross += r.l2.cross_mode_evictions;
  EXPECT_GT(base_cross, 0u);
  EXPECT_EQ(sp_cross, 0u);
}

TEST_F(PaperStory, EnergyBreakdownsAreSane) {
  for (const auto& scheme : *results_) {
    for (const SimResult& r : scheme.per_workload) {
      EXPECT_GE(r.l2_energy.leakage_nj, 0.0);
      EXPECT_GE(r.l2_energy.read_nj, 0.0);
      EXPECT_GE(r.l2_energy.write_nj, 0.0);
      EXPECT_GE(r.l2_energy.refresh_nj, 0.0);
      EXPECT_GE(r.l2_energy.dram_nj, 0.0);
      EXPECT_NEAR(r.l2_energy.total_nj(),
                  r.l2_energy.cache_nj() + r.l2_energy.dram_nj, 1e-6);
      // The baseline premise: leakage dominates SRAM cache energy.
      if (scheme.kind == SchemeKind::BaselineSram) {
        EXPECT_GT(r.l2_energy.leakage_nj, 0.6 * r.l2_energy.cache_nj())
            << r.workload;
      }
    }
  }
}

TEST_F(PaperStory, CyclesConsistentWithRecords) {
  for (const auto& scheme : *results_) {
    for (const SimResult& r : scheme.per_workload) {
      EXPECT_GE(r.cycles, 2 * r.records) << "below base CPI?";
      EXPECT_GT(r.cpi, 1.9);
      EXPECT_LT(r.cpi, 30.0);
    }
  }
}

}  // namespace
}  // namespace mobcache
