#include "cache/bypass_predictor.hpp"

#include <gtest/gtest.h>

#include "core/scheme.hpp"
#include "core/shared_l2.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"
#include "workload/suite.hpp"

namespace mobcache {
namespace {

BypassPredictorConfig on() {
  BypassPredictorConfig c;
  c.enabled = true;
  return c;
}

TEST(BypassPredictor, DisabledNeverBypasses) {
  StreamBypassPredictor p(BypassPredictorConfig{});
  for (int i = 0; i < 10; ++i) p.train_eviction(0x1000, /*was_reused=*/false);
  EXPECT_FALSE(p.should_bypass(0x1000));
}

TEST(BypassPredictor, NewRegionsInstallByDefault) {
  StreamBypassPredictor p(on());
  EXPECT_FALSE(p.should_bypass(0x5000));
}

TEST(BypassPredictor, DeadEvictionsTrainTowardBypass) {
  StreamBypassPredictor p(on());
  const Addr line = 0x9000;
  EXPECT_FALSE(p.should_bypass(line));
  p.train_eviction(line, false);  // counter 2 → 1
  EXPECT_FALSE(p.should_bypass(line));
  p.train_eviction(line, false);  // 1 → 0
  EXPECT_TRUE(p.should_bypass(line));
}

TEST(BypassPredictor, ReuseRecoversInstallDecision) {
  StreamBypassPredictor p(on());
  const Addr line = 0x9000;
  p.train_eviction(line, false);
  p.train_eviction(line, false);
  ASSERT_TRUE(p.should_bypass(line));
  p.train_reuse(line);
  EXPECT_FALSE(p.should_bypass(line));
}

TEST(BypassPredictor, RegionsAreIndependent) {
  StreamBypassPredictor p(on());
  // Two lines in the same 4 KB region share a counter; a distant region
  // does not (modulo the tagless table's rare aliasing, avoided here).
  p.train_eviction(0x0000, false);
  p.train_eviction(0x0FC0, false);  // same region
  EXPECT_TRUE(p.should_bypass(0x0040));
  // A region that maps to a different table slot is unaffected (the table
  // is tagless, so pick one that does not alias slot 0).
  EXPECT_FALSE(p.should_bypass(0x41000));
}

TEST(BypassL2, StreamingFillsGetBypassed) {
  SharedL2Config c;
  c.cache.name = "L2";
  c.cache.size_bytes = 256ull << 10;
  c.cache.assoc = 8;
  c.tech = TechKind::SttRam;
  c.retention = RetentionClass::Hi;
  c.bypass.enabled = true;
  SharedL2 l2(c);

  // A pure stream: every line touched once. After the predictor trains on
  // dead evictions, later fills bypass and the write count flattens.
  Cycle now = 0;
  for (std::uint64_t i = 0; i < 30'000; ++i) {
    l2.access(i * kLineSize, AccessType::Read, Mode::User, now);
    now += 10;
  }
  EXPECT_GT(l2.bypassed_fills(), 10'000u)
      << "a long stream must train the bypass";
  // Bypassed fills save array writes: writes ≪ misses.
  const double writes = l2.energy().write_nj / l2.tech().write_energy_nj;
  EXPECT_LT(writes, static_cast<double>(l2.aggregate_stats().total_misses()) *
                        0.7);
}

TEST(BypassL2, HotDataStaysCached) {
  SharedL2Config c;
  c.cache.name = "L2";
  c.cache.size_bytes = 256ull << 10;
  c.cache.assoc = 8;
  c.tech = TechKind::SttRam;
  c.bypass.enabled = true;
  SharedL2 l2(c);

  // A small hot loop: after the first pass everything hits; the predictor
  // must never start bypassing it.
  Cycle now = 0;
  for (int round = 0; round < 50; ++round) {
    for (std::uint64_t i = 0; i < 256; ++i) {
      l2.access(i * kLineSize, AccessType::Read, Mode::User, now);
      now += 10;
    }
  }
  EXPECT_EQ(l2.bypassed_fills(), 0u);
  EXPECT_GT(l2.aggregate_stats().miss_rate() < 0.05, 0);
}

TEST(BypassL2, EndToEndSavesWriteEnergyOnDeadStreams) {
  // A genuinely dead stream: one Stream phase over a 32 MB arena that never
  // wraps within the trace, so no fill is ever re-referenced at L2.
  AppSpec spec = make_app(AppId::Launcher);
  spec.phases.resize(1);
  spec.phases[0].pattern = AccessPattern::Stream;
  spec.phases[0].ws_bytes = 32ull << 20;
  spec.phases[0].mean_phase_len = 10'000'000;
  spec.phases[0].services.clear();
  spec.transitions.clear();
  GeneratorConfig gc;
  gc.target_accesses = 250'000;
  gc.seed = 9;
  const Trace t = generate_trace(spec, gc);

  SchemeParams off;
  const SimResult r_off = simulate(t, build_scheme(SchemeKind::SharedStt, off));
  SchemeParams onp;
  onp.stt_write_bypass = true;
  const SimResult r_on = simulate(t, build_scheme(SchemeKind::SharedStt, onp));

  EXPECT_LT(r_on.l2_energy.write_nj, r_off.l2_energy.write_nj * 0.6)
      << "bypass must cut STT write energy on dead streams";
  // A dead stream misses everywhere anyway: time must not regress.
  EXPECT_LE(r_on.cycles, r_off.cycles * 1.01);
}

TEST(BypassL2, OffByDefaultEverywhere) {
  const SchemeParams defaults;
  EXPECT_FALSE(defaults.stt_write_bypass);
  // And the default factory wires predictors disabled: a streaming run
  // through default Shared-STT must report zero bypasses.
  SharedL2Config c;
  c.cache.name = "L2";
  c.cache.size_bytes = 128ull << 10;
  c.cache.assoc = 8;
  c.tech = TechKind::SttRam;
  SharedL2 l2(c);
  for (std::uint64_t i = 0; i < 10'000; ++i)
    l2.access(i * kLineSize, AccessType::Read, Mode::User, i * 10);
  EXPECT_EQ(l2.bypassed_fills(), 0u);
}

}  // namespace
}  // namespace mobcache
