#include "energy/refresh.hpp"

#include <gtest/gtest.h>

namespace mobcache {
namespace {

CacheConfig cfg() {
  CacheConfig c;
  c.name = "stt";
  c.size_bytes = 16ull << 10;
  c.assoc = 4;
  return c;
}

constexpr Cycle kPeriod = 1000;

SetAssocCache make_cache() {
  SetAssocCache c(cfg());
  c.set_retention_period(kPeriod);
  return c;
}

TEST(Refresh, ScrubAllKeepsEverythingAlive) {
  SetAssocCache cache = make_cache();
  RefreshController ctl(RefreshPolicy::ScrubAll, kPeriod / 2);
  TechParams tech = make_sttram(cfg().size_bytes, RetentionClass::Lo);
  EnergyAccountant acct;

  cache.access(0, AccessType::Read, Mode::User, 0);
  cache.access(kLineSize, AccessType::Write, Mode::User, 0);

  // Tick on schedule for several retention periods: nothing may expire.
  for (Cycle now = 500; now <= 5000; now += 500) {
    auto r = ctl.tick(cache, now, tech, acct);
    EXPECT_EQ(r.expired_clean, 0u);
    EXPECT_EQ(r.expired_dirty, 0u);
  }
  EXPECT_TRUE(cache.contains(0, 5000));
  EXPECT_TRUE(cache.contains(kLineSize, 5000));
  EXPECT_GT(cache.stats().refreshes, 0u);
  EXPECT_GT(acct.breakdown().refresh_nj, 0.0);
  EXPECT_EQ(acct.breakdown().dram_nj, 0.0);
}

TEST(Refresh, ScrubDirtyLetsCleanExpire) {
  SetAssocCache cache = make_cache();
  RefreshController ctl(RefreshPolicy::ScrubDirty, kPeriod / 2);
  TechParams tech = make_sttram(cfg().size_bytes, RetentionClass::Lo);
  EnergyAccountant acct;

  cache.access(0, AccessType::Read, Mode::User, 0);          // clean
  cache.access(kLineSize, AccessType::Write, Mode::User, 0);  // dirty

  std::uint64_t clean_expired = 0;
  for (Cycle now = 500; now <= 3000; now += 500) {
    auto r = ctl.tick(cache, now, tech, acct);
    clean_expired += r.expired_clean;
    EXPECT_EQ(r.expired_dirty, 0u) << "dirty blocks must be scrubbed in time";
  }
  EXPECT_EQ(clean_expired, 1u);
  EXPECT_FALSE(cache.contains(0, 3000));
  EXPECT_TRUE(cache.contains(kLineSize, 3000));
  EXPECT_EQ(acct.breakdown().dram_nj, 0.0);
}

TEST(Refresh, InvalidatePolicyWritesBackDirtyExpiry) {
  SetAssocCache cache = make_cache();
  RefreshController ctl(RefreshPolicy::InvalidateOnExpiry, kPeriod / 2);
  TechParams tech = make_sttram(cfg().size_bytes, RetentionClass::Lo);
  EnergyAccountant acct;

  cache.access(0, AccessType::Write, Mode::User, 0);
  auto r = ctl.tick(cache, 2000, tech, acct);
  EXPECT_EQ(r.refreshed, 0u);
  EXPECT_EQ(r.expired_dirty, 1u);
  EXPECT_GT(acct.breakdown().dram_nj, 0.0);  // expiry writeback
  EXPECT_EQ(acct.breakdown().refresh_nj, 0.0);
}

TEST(Refresh, NoDecayNoWork) {
  SetAssocCache cache(cfg());  // retention 0 (SRAM-like)
  RefreshController ctl(RefreshPolicy::ScrubAll, 500);
  TechParams tech = make_sram(cfg().size_bytes);
  EnergyAccountant acct;
  cache.access(0, AccessType::Write, Mode::User, 0);
  auto r = ctl.tick(cache, 10'000, tech, acct);
  EXPECT_EQ(r.refreshed, 0u);
  EXPECT_EQ(r.expired_clean + r.expired_dirty, 0u);
  EXPECT_EQ(acct.breakdown().refresh_nj, 0.0);
}

TEST(Refresh, DueCadence) {
  RefreshController ctl(RefreshPolicy::ScrubDirty, 100);
  EXPECT_FALSE(ctl.due(50));
  EXPECT_TRUE(ctl.due(100));
  ctl.mark_ticked(100);
  EXPECT_FALSE(ctl.due(150));
  EXPECT_TRUE(ctl.due(200));
}

TEST(Refresh, TickUpdatesCadence) {
  SetAssocCache cache = make_cache();
  RefreshController ctl(RefreshPolicy::ScrubDirty, 100);
  TechParams tech = make_sttram(cfg().size_bytes, RetentionClass::Lo);
  EnergyAccountant acct;
  ctl.tick(cache, 100, tech, acct);
  EXPECT_FALSE(ctl.due(150));
}

TEST(Refresh, ExactDeadlineBlockScrubbedOnceNotExpired) {
  // A dirty block whose retention deadline lands exactly on the scrub tick
  // must be refreshed once (one write charged) and must not ALSO be swept
  // as expired in the same tick.
  SetAssocCache cache = make_cache();
  RefreshController ctl(RefreshPolicy::ScrubDirty, kPeriod);
  TechParams tech = make_sttram(cfg().size_bytes, RetentionClass::Lo);
  EnergyAccountant acct;

  cache.access(0, AccessType::Write, Mode::User, 0);  // deadline = kPeriod
  auto r = ctl.tick(cache, kPeriod, tech, acct);
  EXPECT_EQ(r.refreshed, 1u);
  EXPECT_EQ(r.expired_clean, 0u);
  EXPECT_EQ(r.expired_dirty, 0u);
  EXPECT_TRUE(cache.contains(0, kPeriod));
  EXPECT_NEAR(acct.breakdown().refresh_nj, tech.write_energy_nj, 1e-12);
  EXPECT_EQ(acct.breakdown().dram_nj, 0.0);
}

TEST(Refresh, SameCycleReentryDoesNoDoubleWork) {
  // finalize() paths can tick the controller twice at the same cycle (the
  // epoch boundary and the end-of-run settle); the second call must be a
  // no-op, not a second refresh charge.
  SetAssocCache cache = make_cache();
  RefreshController ctl(RefreshPolicy::ScrubAll, kPeriod / 2);
  TechParams tech = make_sttram(cfg().size_bytes, RetentionClass::Lo);
  EnergyAccountant acct;

  cache.access(0, AccessType::Write, Mode::User, 0);
  auto first = ctl.tick(cache, 600, tech, acct);
  EXPECT_EQ(first.refreshed, 1u);
  const double nj_after_first = acct.breakdown().refresh_nj;

  auto second = ctl.tick(cache, 600, tech, acct);
  EXPECT_EQ(second.refreshed, 0u);
  EXPECT_EQ(second.expired_clean + second.expired_dirty, 0u);
  EXPECT_EQ(acct.breakdown().refresh_nj, nj_after_first);

  // A later cycle ticks normally again.
  auto third = ctl.tick(cache, 600 + kPeriod / 2, tech, acct);
  EXPECT_EQ(third.refreshed, 1u);
}

TEST(Refresh, CleanBlockAtExactDeadlineExpiresExactlyOnce) {
  SetAssocCache cache = make_cache();
  RefreshController ctl(RefreshPolicy::ScrubDirty, kPeriod / 2);
  TechParams tech = make_sttram(cfg().size_bytes, RetentionClass::Lo);
  EnergyAccountant acct;

  cache.access(0, AccessType::Read, Mode::User, 0);  // clean, deadline kPeriod
  std::uint64_t expired = 0;
  for (Cycle now = kPeriod; now <= 3 * kPeriod; now += kPeriod / 2)
    expired += ctl.tick(cache, now, tech, acct).expired_clean;
  EXPECT_EQ(expired, 1u);
  EXPECT_FALSE(cache.contains(0, 3 * kPeriod));
}

TEST(Refresh, RefreshEnergyProportionalToScrubbedBlocks) {
  SetAssocCache cache = make_cache();
  RefreshController ctl(RefreshPolicy::ScrubAll, kPeriod / 2);
  TechParams tech = make_sttram(cfg().size_bytes, RetentionClass::Lo);
  EnergyAccountant acct;

  for (std::uint64_t i = 0; i < 10; ++i)
    cache.access(i * kLineSize, AccessType::Write, Mode::User, 0);
  // All 10 blocks expire within (600, 600+500]: one pass scrubs all.
  auto r = ctl.tick(cache, 600, tech, acct);
  EXPECT_EQ(r.refreshed, 10u);
  EXPECT_NEAR(acct.breakdown().refresh_nj, 10.0 * tech.write_energy_nj, 1e-9);
}

}  // namespace
}  // namespace mobcache
