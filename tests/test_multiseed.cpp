#include <gtest/gtest.h>

#include "exp/runner.hpp"

namespace mobcache {
namespace {

TEST(MultiSeed, AggregatesAcrossSeeds) {
  const auto results = run_multi_seed(
      {AppId::Launcher}, 60'000, {1, 2, 3},
      {SchemeKind::BaselineSram, SchemeKind::StaticPartMrstt});
  ASSERT_EQ(results.size(), 2u);

  // The baseline normalizes to exactly 1.0 for every seed.
  EXPECT_NEAR(results[0].cache_energy.mean, 1.0, 1e-12);
  EXPECT_NEAR(results[0].cache_energy.stddev, 0.0, 1e-12);
  EXPECT_NEAR(results[0].exec_time.mean, 1.0, 1e-12);

  // The design varies across seeds but stays well below the baseline.
  const MultiSeedResult& mrstt = results[1];
  EXPECT_LT(mrstt.cache_energy.max, 0.6);
  EXPECT_LE(mrstt.cache_energy.min, mrstt.cache_energy.mean);
  EXPECT_LE(mrstt.cache_energy.mean, mrstt.cache_energy.max);
  EXPECT_GE(mrstt.cache_energy.stddev, 0.0);
}

TEST(MultiSeed, SingleSeedHasZeroSpread) {
  const auto results = run_multi_seed({AppId::AudioPlayer}, 50'000, {7},
                                      {SchemeKind::BaselineSram,
                                       SchemeKind::ShrunkSram});
  EXPECT_EQ(results[1].cache_energy.stddev, 0.0);
  EXPECT_EQ(results[1].cache_energy.min, results[1].cache_energy.max);
}

TEST(MultiSeed, DeterministicGivenSameSeeds) {
  const auto a = run_multi_seed({AppId::Email}, 50'000, {5, 6},
                                {SchemeKind::BaselineSram,
                                 SchemeKind::DynamicStt});
  const auto b = run_multi_seed({AppId::Email}, 50'000, {5, 6},
                                {SchemeKind::BaselineSram,
                                 SchemeKind::DynamicStt});
  EXPECT_DOUBLE_EQ(a[1].cache_energy.mean, b[1].cache_energy.mean);
  EXPECT_DOUBLE_EQ(a[1].exec_time.stddev, b[1].exec_time.stddev);
}

}  // namespace
}  // namespace mobcache
