#include "sim/multicore.hpp"
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "core/scheme.hpp"
#include "workload/scenario.hpp"
#include "workload/suite.hpp"

namespace mobcache {
namespace {

MulticoreL2Config mc_cfg(std::uint32_t cores = 2,
                         TechKind tech = TechKind::SttRam) {
  MulticoreL2Config c;
  c.cache.name = "L2";
  c.cache.size_bytes = 2ull << 20;
  c.cache.assoc = 16;
  c.cores = cores;
  c.tech = tech;
  c.epoch_accesses = 5'000;
  return c;
}

TEST(MulticoreL2, InitialAllocationCoversAllGroups) {
  MulticoreDynamicL2 l2(mc_cfg(3));
  EXPECT_EQ(l2.groups(), 4u);
  std::uint32_t total = 0;
  for (std::uint32_t g = 0; g < l2.groups(); ++g) {
    EXPECT_GE(l2.group_ways(g), 1u);
    total += l2.group_ways(g);
  }
  EXPECT_LE(total, 16u);
}

TEST(MulticoreL2, KernelGroupSharedAcrossCores) {
  MulticoreDynamicL2 l2(mc_cfg(2));
  // Core 0 fills a kernel line; core 1 must hit the same line (one kernel).
  l2.access(kKernelSpaceBase, AccessType::Read, Mode::Kernel, 0, 0);
  const L2Result r =
      l2.access(kKernelSpaceBase, AccessType::Read, Mode::Kernel, 1, 10);
  EXPECT_TRUE(r.hit);
}

TEST(MulticoreL2, UserGroupsIsolatedBetweenCores) {
  MulticoreDynamicL2 l2(mc_cfg(2));
  // Same user line address from different cores lands in different groups:
  // no false sharing even with identical addresses.
  l2.access(0x1000, AccessType::Read, Mode::User, 0, 0);
  const L2Result r = l2.access(0x1000, AccessType::Read, Mode::User, 1, 10);
  EXPECT_FALSE(r.hit) << "cross-core user hit would be a protection bug";
}

TEST(MulticoreL2, HammeringOneCoreDoesNotEvictAnother) {
  MulticoreDynamicL2 l2(mc_cfg(2));
  l2.access(0x4000, AccessType::Read, Mode::User, 0, 0);
  // Core 1 streams heavily within one epoch (no reallocation yet).
  for (std::uint64_t i = 0; i < 3'000; ++i) {
    l2.access(0x100000 + i * kLineSize, AccessType::Read, Mode::User, 1,
              10 + i);
  }
  const L2Result r =
      l2.access(0x4000, AccessType::Read, Mode::User, 0, 100'000);
  EXPECT_TRUE(r.hit) << "core 1's stream evicted core 0's user block";
}

TEST(MulticoreL2, ReallocatesTowardDemand) {
  MulticoreDynamicL2 l2(mc_cfg(2));
  Cycle now = 0;
  // Core 0 works a large user set; core 1 idles; kernel light.
  for (std::uint64_t i = 0; i < 40'000; ++i) {
    l2.access((i % 12'288) * kLineSize, AccessType::Read, Mode::User, 0, now);
    if (i % 16 == 0)
      l2.access(kKernelSpaceBase + (i % 512) * kLineSize, AccessType::Read,
                Mode::Kernel, 0, now);
    now += 10;
  }
  l2.finalize(now);
  EXPECT_GT(l2.reconfigurations(), 0u);
  EXPECT_GT(l2.group_ways(1), l2.group_ways(2))
      << "busy core 0 should hold more user ways than idle core 1";
  EXPECT_LT(l2.avg_enabled_bytes(), 2.0 * 1024 * 1024);
}

TEST(MulticoreSim, RunsTwoCoresToCompletion) {
  std::vector<Trace> traces;
  traces.push_back(generate_app_trace(AppId::Browser, 60'000, 5));
  traces.push_back(generate_app_trace(AppId::Game, 60'000, 6));

  auto l2 = std::make_unique<MulticoreDynamicL2>(mc_cfg(2));
  const MulticoreResult r = simulate_multicore(traces, std::move(l2));

  ASSERT_EQ(r.cores.size(), 2u);
  EXPECT_EQ(r.cores[0].records, traces[0].size());
  EXPECT_EQ(r.cores[1].records, traces[1].size());
  EXPECT_EQ(r.makespan, std::max(r.cores[0].cycles, r.cores[1].cycles));
  EXPECT_GT(r.l2.total_accesses(), 0u);
  EXPECT_GT(r.l2_energy.cache_nj(), 0.0);
  EXPECT_LE(r.l2_avg_enabled_bytes, 2.0 * 1024 * 1024);
}

TEST(MulticoreSim, ModeOnlyAdapterMatchesSingleCoreBehavior) {
  // With one core and the adapter, the multicore driver must agree with
  // the single-core simulator on L2 demand accesses.
  const Trace t = generate_app_trace(AppId::Email, 50'000, 7);

  const SimResult single = simulate(t, build_scheme(SchemeKind::BaselineSram));

  std::vector<Trace> traces{t};
  auto adapter = std::make_unique<ModeOnlyL2Adapter>(
      build_scheme(SchemeKind::BaselineSram));
  const MulticoreResult multi =
      simulate_multicore(traces, std::move(adapter));

  // Core 0's user slot offset shifts addresses but not line/set structure
  // (the slot stride is set-aligned), so demand counts match exactly.
  EXPECT_EQ(multi.l2.total_accesses(), single.l2.total_accesses());
  EXPECT_EQ(multi.l2.total_hits(), single.l2.total_hits());
  EXPECT_EQ(multi.makespan, single.cycles);
}

TEST(MulticoreSim, SharedL2SuffersCrossCoreInterference) {
  // The multicore motivation: two cores through a mode-oblivious shared L2
  // interfere; the grouped dynamic design isolates them.
  std::vector<Trace> traces;
  traces.push_back(generate_app_trace(AppId::Launcher, 150'000, 8));
  traces.push_back(generate_app_trace(AppId::Email, 150'000, 9));

  auto shared = std::make_unique<ModeOnlyL2Adapter>(
      build_scheme(SchemeKind::BaselineSram));
  const MulticoreResult rs = simulate_multicore(traces, std::move(shared));

  auto grouped = std::make_unique<MulticoreDynamicL2>(mc_cfg(2));
  const MulticoreResult rg = simulate_multicore(traces, std::move(grouped));

  // The grouped design must save a large fraction of energy at a bounded
  // miss-rate cost.
  EXPECT_LT(rg.l2_energy.cache_nj(), 0.5 * rs.l2_energy.cache_nj());
  EXPECT_LT(rg.l2_miss_rate(), rs.l2_miss_rate() + 0.08);
}

TEST(MulticoreSim, Deterministic) {
  std::vector<Trace> traces;
  traces.push_back(generate_app_trace(AppId::Launcher, 40'000, 2));
  traces.push_back(generate_app_trace(AppId::AudioPlayer, 40'000, 3));
  const MulticoreResult a = simulate_multicore(
      traces, std::make_unique<MulticoreDynamicL2>(mc_cfg(2)));
  const MulticoreResult b = simulate_multicore(
      traces, std::make_unique<MulticoreDynamicL2>(mc_cfg(2)));
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.l2_energy.total_nj(), b.l2_energy.total_nj());
}

}  // namespace
}  // namespace mobcache
