#include "exp/json_export.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <cmath>
#include <fstream>

namespace mobcache {
namespace {

TEST(Json, EscapeCoversSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, WriterBuildsNestedDocument) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("test");
  w.key("pi").value(3.25);
  w.key("count").value(std::uint64_t{42});
  w.key("ok").value(true);
  w.key("items");
  w.begin_array();
  w.value(std::uint64_t{1});
  w.value(std::uint64_t{2});
  w.begin_object();
  w.key("nested").value("yes");
  w.end_object();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"test\",\"pi\":3.25,\"count\":42,\"ok\":true,"
            "\"items\":[1,2,{\"nested\":\"yes\"}]}");
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::nan(""));
  w.value(1.0 / 0.0);
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(Json, DeepNestingStaysBalanced) {
  // The writer's nesting stack is unbounded; a pathological document must
  // still come out structurally valid.
  constexpr int kDepth = 256;
  JsonWriter w;
  for (int i = 0; i < kDepth; ++i) {
    w.begin_object();
    w.key("d");
    w.begin_array();
  }
  w.value(std::uint64_t{7});
  for (int i = 0; i < kDepth; ++i) {
    w.end_array();
    w.end_object();
  }
  const std::string& s = w.str();
  EXPECT_EQ(std::count(s.begin(), s.end(), '{'), kDepth);
  EXPECT_EQ(std::count(s.begin(), s.end(), '}'), kDepth);
  EXPECT_EQ(std::count(s.begin(), s.end(), '['), kDepth);
  EXPECT_EQ(std::count(s.begin(), s.end(), ']'), kDepth);
  EXPECT_NE(s.find("[7]"), std::string::npos);
}

TEST(Json, EmptyContainers) {
  JsonWriter w;
  w.begin_object();
  w.key("a");
  w.begin_array();
  w.end_array();
  w.key("o");
  w.begin_object();
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.str(), "{\"a\":[],\"o\":{}}");
}

TEST(Json, SimResultSerializes) {
  SimResult r;
  r.workload = "launcher";
  r.scheme = "test \"scheme\"";
  r.records = 1000;
  r.cycles = 2500;
  r.cpi = 2.5;
  r.l2_energy.leakage_nj = 123.5;
  JsonWriter w;
  write_sim_result(w, r);
  const std::string& s = w.str();
  EXPECT_NE(s.find("\"workload\":\"launcher\""), std::string::npos);
  EXPECT_NE(s.find("\"scheme\":\"test \\\"scheme\\\"\""), std::string::npos);
  EXPECT_NE(s.find("\"cycles\":2500"), std::string::npos);
  EXPECT_NE(s.find("\"leakage\":123.5"), std::string::npos);
  // Balanced braces.
  EXPECT_EQ(std::count(s.begin(), s.end(), '{'),
            std::count(s.begin(), s.end(), '}'));
}

TEST(Json, ExperimentRoundtripsThroughFile) {
  SchemeSuiteResult base;
  base.name = "Base";
  base.norm_cache_energy = 1.0;
  base.per_workload.resize(1);
  base.per_workload[0].workload = "app";

  setenv("MOBCACHE_RESULTS_DIR", "/tmp/mobcache_json_test", 1);
  ASSERT_TRUE(write_experiment_json("E0", {base}, "e0.json"));
  std::ifstream f("/tmp/mobcache_json_test/e0.json");
  ASSERT_TRUE(f.good());
  std::string content((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("\"experiment\":\"E0\""), std::string::npos);
  EXPECT_NE(content.find("\"norm_cache_energy\":1"), std::string::npos);
  unsetenv("MOBCACHE_RESULTS_DIR");
  std::filesystem::remove_all("/tmp/mobcache_json_test");
}

}  // namespace
}  // namespace mobcache
