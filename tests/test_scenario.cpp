#include "workload/scenario.hpp"
#include "workload/suite.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace mobcache {
namespace {

ScenarioConfig small_cfg() {
  ScenarioConfig c;
  c.apps = {AppId::Launcher, AppId::AudioPlayer, AppId::Email};
  c.total_accesses = 300'000;
  c.slice_mean = 30'000;
  c.seed = 5;
  return c;
}

TEST(Scenario, HitsTargetLengthAndName) {
  const Trace t = generate_scenario(small_cfg());
  EXPECT_GE(t.size(), 300'000u);
  EXPECT_LT(t.size(), 302'000u);
  EXPECT_EQ(t.name(), "mix-launcher-audio-email");
}

TEST(Scenario, Deterministic) {
  const Trace a = generate_scenario(small_cfg());
  const Trace b = generate_scenario(small_cfg());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 997)
    ASSERT_EQ(a[i].addr, b[i].addr);
}

TEST(Scenario, ModesConsistent) {
  const Trace t = generate_scenario(small_cfg());
  EXPECT_TRUE(t.modes_consistent_with_addresses());
}

TEST(Scenario, AppsHaveDisjointUserAddressSlots) {
  const Trace t = generate_scenario(small_cfg());
  // Each user address must fall inside exactly one app slot; slot indices
  // observed must cover all three apps.
  std::unordered_set<std::uint64_t> slots;
  for (const Access& a : t.accesses()) {
    if (a.mode != Mode::User) continue;
    slots.insert(a.addr / kAppSlotStride);
  }
  // Slot ids differ by app index; 3 apps → addresses spread over ≥3 slots
  // groups (base addresses already span slots, so compare via thread ids
  // instead for the strict claim below).
  EXPECT_GE(slots.size(), 3u);
}

TEST(Scenario, KernelSpaceSharedAcrossApps) {
  const Trace t = generate_scenario(small_cfg());
  // Kernel lines touched by different foreground slices overlap (shared
  // kernel): the number of distinct kernel lines must be far below what
  // three disjoint kernels would produce.
  const TraceSummary s = t.summarize();
  const Trace solo = generate_app_trace(AppId::Launcher, 100'000, 5);
  const TraceSummary ss = solo.summarize();
  EXPECT_LT(s.distinct_lines_kernel, 3 * ss.distinct_lines_kernel * 2);
  EXPECT_GT(s.kernel_fraction(), 0.08);
}

TEST(Scenario, ThreadIdsIdentifyApps) {
  const Trace t = generate_scenario(small_cfg());
  std::unordered_set<std::uint16_t> user_threads;
  for (const Access& a : t.accesses()) {
    if (a.mode == Mode::User) user_threads.insert(a.thread);
  }
  // Apps 0,1,2 have user thread bases 0,4,8.
  EXPECT_TRUE(user_threads.count(0));
  EXPECT_TRUE(user_threads.count(4));
  EXPECT_TRUE(user_threads.count(8));
}

TEST(Scenario, EmptyConfigYieldsEmptyTrace) {
  ScenarioConfig c;
  c.apps = {};
  c.total_accesses = 1000;
  EXPECT_TRUE(generate_scenario(c).empty());
  c.apps = {AppId::Launcher};
  c.total_accesses = 0;
  EXPECT_TRUE(generate_scenario(c).empty());
}

TEST(Scenario, SingleAppScenarioStillValid) {
  ScenarioConfig c;
  c.apps = {AppId::Game};
  c.total_accesses = 50'000;
  c.slice_mean = 10'000;
  const Trace t = generate_scenario(c);
  EXPECT_GE(t.size(), 50'000u);
  EXPECT_TRUE(t.modes_consistent_with_addresses());
}

}  // namespace
}  // namespace mobcache
