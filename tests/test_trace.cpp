#include "trace/trace.hpp"

#include <gtest/gtest.h>

namespace mobcache {
namespace {

Access make(Addr addr, AccessType t, Mode m) {
  Access a;
  a.addr = addr;
  a.type = t;
  a.mode = m;
  return a;
}

TEST(Types, LineAddrMasksOffset) {
  EXPECT_EQ(line_addr(0x1000), 0x1000u);
  EXPECT_EQ(line_addr(0x103f), 0x1000u);
  EXPECT_EQ(line_addr(0x1040), 0x1040u);
}

TEST(Types, KernelAddressPredicate) {
  EXPECT_FALSE(is_kernel_addr(0x1000));
  EXPECT_FALSE(is_kernel_addr(0x7fff'ffff'ffffull));
  EXPECT_TRUE(is_kernel_addr(kKernelSpaceBase));
  EXPECT_TRUE(is_kernel_addr(~0ull));
}

TEST(Trace, SummarizeCountsByModeAndType) {
  Trace t("demo");
  t.push(make(0x100, AccessType::Read, Mode::User));
  t.push(make(0x140, AccessType::Write, Mode::User));
  t.push(make(kKernelSpaceBase + 0x40, AccessType::Read, Mode::Kernel));
  t.push(make(kKernelSpaceBase + 0x40, AccessType::InstFetch, Mode::Kernel));

  const TraceSummary s = t.summarize();
  EXPECT_EQ(s.total, 4u);
  EXPECT_EQ(s.by_mode[0], 2u);
  EXPECT_EQ(s.by_mode[1], 2u);
  EXPECT_EQ(s.writes, 1u);
  EXPECT_EQ(s.ifetches, 1u);
  EXPECT_DOUBLE_EQ(s.kernel_fraction(), 0.5);
}

TEST(Trace, DistinctLinesPerMode) {
  Trace t;
  // Two accesses in the same user line, one in another.
  t.push(make(0x100, AccessType::Read, Mode::User));
  t.push(make(0x104, AccessType::Read, Mode::User));
  t.push(make(0x240, AccessType::Read, Mode::User));
  t.push(make(kKernelSpaceBase, AccessType::Read, Mode::Kernel));
  const TraceSummary s = t.summarize();
  EXPECT_EQ(s.distinct_lines_user, 2u);
  EXPECT_EQ(s.distinct_lines_kernel, 1u);
}

TEST(Trace, EmptySummary) {
  Trace t;
  const TraceSummary s = t.summarize();
  EXPECT_EQ(s.total, 0u);
  EXPECT_EQ(s.kernel_fraction(), 0.0);
}

TEST(Trace, ModeConsistencyHolds) {
  Trace t;
  t.push(make(0x100, AccessType::Read, Mode::User));
  t.push(make(kKernelSpaceBase + 0x80, AccessType::Write, Mode::Kernel));
  EXPECT_TRUE(t.modes_consistent_with_addresses());
}

TEST(Trace, ModeConsistencyViolationDetected) {
  Trace t;
  t.push(make(kKernelSpaceBase + 0x80, AccessType::Read, Mode::User));
  EXPECT_FALSE(t.modes_consistent_with_addresses());

  Trace t2;
  t2.push(make(0x100, AccessType::Read, Mode::Kernel));
  EXPECT_FALSE(t2.modes_consistent_with_addresses());
}

TEST(Trace, AccessHelpers) {
  EXPECT_TRUE(make(0, AccessType::InstFetch, Mode::User).is_ifetch());
  EXPECT_TRUE(make(0, AccessType::Write, Mode::User).is_write());
  EXPECT_FALSE(make(0, AccessType::Read, Mode::User).is_write());
}

TEST(Trace, NameAndIndexing) {
  Trace t("browser");
  EXPECT_EQ(t.name(), "browser");
  EXPECT_TRUE(t.empty());
  t.push(make(0x40, AccessType::Read, Mode::User));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].addr, 0x40u);
}

}  // namespace
}  // namespace mobcache
