#include "core/static_partitioned_l2.hpp"

#include <gtest/gtest.h>

namespace mobcache {
namespace {

StaticPartitionConfig cfg() {
  StaticPartitionConfig c;
  c.user = sram_segment(256ull << 10, 8);
  c.kernel = sram_segment(128ull << 10, 8);
  return c;
}

TEST(StaticPartition, RoutesByMode) {
  StaticPartitionedL2 l2(cfg());
  l2.access(0x1000, AccessType::Read, Mode::User, 0);
  l2.access(kKernelSpaceBase, AccessType::Read, Mode::Kernel, 1);

  EXPECT_EQ(l2.segment(Mode::User).aggregate_stats().total_accesses(), 1u);
  EXPECT_EQ(l2.segment(Mode::Kernel).aggregate_stats().total_accesses(), 1u);
}

TEST(StaticPartition, NoCrossModeInterferenceEver) {
  StaticPartitionedL2 l2(cfg());
  // Hammer the kernel segment; the user block must stay resident.
  l2.access(0x1000, AccessType::Read, Mode::User, 0);
  for (std::uint64_t i = 0; i < 100'000; ++i) {
    l2.access(kKernelSpaceBase + i * kLineSize, AccessType::Read, Mode::Kernel,
              10 + i);
  }
  const L2Result r = l2.access(0x1000, AccessType::Read, Mode::User, 200'000);
  EXPECT_TRUE(r.hit) << "kernel traffic evicted a user block across the "
                        "partition boundary";
  EXPECT_EQ(l2.aggregate_stats().cross_mode_evictions, 0u);
}

TEST(StaticPartition, CapacityIsSumOfSegments) {
  StaticPartitionedL2 l2(cfg());
  EXPECT_EQ(l2.capacity_bytes(), (256ull + 128ull) << 10);
  EXPECT_DOUBLE_EQ(l2.avg_enabled_bytes(), (256.0 + 128.0) * 1024);
}

TEST(StaticPartition, EnergyIsSumOfSegments) {
  StaticPartitionedL2 l2(cfg());
  l2.access(0x1000, AccessType::Read, Mode::User, 0);
  l2.access(kKernelSpaceBase, AccessType::Read, Mode::Kernel, 1);
  l2.finalize(1'000'000);

  const EnergyBreakdown sum_segments = [&] {
    EnergyBreakdown e = l2.segment(Mode::User).energy();
    e += l2.segment(Mode::Kernel).energy();
    return e;
  }();
  EXPECT_DOUBLE_EQ(l2.energy().total_nj(), sum_segments.total_nj());
  // Leakage of 384 KB of SRAM over 1 M cycles.
  const double expect_leak = make_sram(256ull << 10).leakage_nj(1'000'000) +
                             make_sram(128ull << 10).leakage_nj(1'000'000);
  EXPECT_NEAR(l2.energy().leakage_nj, expect_leak, 1e-6);
}

TEST(StaticPartition, AggregateStatsMergeBothSegments) {
  StaticPartitionedL2 l2(cfg());
  l2.access(0x1000, AccessType::Read, Mode::User, 0);
  l2.access(0x1000, AccessType::Read, Mode::User, 1);
  l2.access(kKernelSpaceBase, AccessType::Read, Mode::Kernel, 2);
  const CacheStats s = l2.aggregate_stats();
  EXPECT_EQ(s.total_accesses(), 3u);
  EXPECT_EQ(s.total_hits(), 1u);
  EXPECT_EQ(s.accesses[static_cast<int>(Mode::Kernel)], 1u);
}

TEST(StaticPartition, WritebackRoutedToOwnerSegment) {
  StaticPartitionedL2 l2(cfg());
  l2.writeback(kKernelSpaceBase + 0x40, Mode::Kernel, 0);
  EXPECT_EQ(l2.segment(Mode::Kernel).aggregate_stats().total_accesses(), 1u);
  EXPECT_EQ(l2.segment(Mode::User).aggregate_stats().total_accesses(), 0u);
}

TEST(StaticPartition, SegmentsCanDifferInTechnology) {
  StaticPartitionConfig c;
  c.user = sttram_segment(256ull << 10, 8, RetentionClass::Mid);
  c.kernel = sttram_segment(128ull << 10, 8, RetentionClass::Lo);
  StaticPartitionedL2 l2(c);
  EXPECT_EQ(l2.segment(Mode::User).tech().retention, RetentionClass::Mid);
  EXPECT_EQ(l2.segment(Mode::Kernel).tech().retention, RetentionClass::Lo);
  EXPECT_EQ(l2.segment(Mode::Kernel).tech().retention_cycles,
            tech_constants::kRetentionLoCycles);
  const std::string d = l2.describe();
  EXPECT_NE(d.find("user"), std::string::npos);
  EXPECT_NE(d.find("kernel"), std::string::npos);
  EXPECT_NE(d.find("MID"), std::string::npos);
  EXPECT_NE(d.find("LO"), std::string::npos);
}

TEST(StaticPartition, EvictionObserverCoversBothSegments) {
  StaticPartitionConfig c;
  c.user = sram_segment(8ull << 10, 1);   // tiny direct-mapped
  c.kernel = sram_segment(8ull << 10, 1);
  StaticPartitionedL2 l2(c);
  int user_ev = 0;
  int kernel_ev = 0;
  l2.set_eviction_observer([&](const EvictionEvent& e) {
    (e.owner == Mode::User ? user_ev : kernel_ev)++;
  });
  const std::uint64_t sets = (8ull << 10) / kLineSize;
  for (std::uint64_t i = 0; i < 3; ++i) {
    l2.access(i * sets * kLineSize, AccessType::Read, Mode::User, i);
    l2.access(kKernelSpaceBase + i * sets * kLineSize, AccessType::Read,
              Mode::Kernel, i);
  }
  EXPECT_EQ(user_ev, 2);
  EXPECT_EQ(kernel_ev, 2);
}

TEST(StaticPartition, BuilderHelpers) {
  const SegmentSpec s = sram_segment(64ull << 10, 4);
  EXPECT_EQ(s.tech, TechKind::Sram);
  EXPECT_EQ(s.size_bytes, 64ull << 10);
  const SegmentSpec t =
      sttram_segment(64ull << 10, 4, RetentionClass::Lo,
                     RefreshPolicy::ScrubAll);
  EXPECT_EQ(t.tech, TechKind::SttRam);
  EXPECT_EQ(t.retention, RetentionClass::Lo);
  EXPECT_EQ(t.refresh, RefreshPolicy::ScrubAll);
}

}  // namespace
}  // namespace mobcache
