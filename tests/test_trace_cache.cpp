#include "trace/trace_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <future>
#include <thread>
#include <vector>

#include "exp/runner.hpp"
#include "workload/suite.hpp"

namespace mobcache {
namespace {

/// Every test starts from an empty cache; the instance is process-wide and
/// other tests in this binary would otherwise leak state in.
class TraceCacheTest : public ::testing::Test {
 protected:
  void SetUp() override { TraceCache::instance().clear(); }
  void TearDown() override { TraceCache::instance().clear(); }
};

Trace tiny_trace(const char* name, std::size_t n) {
  Trace t(name);
  for (std::size_t i = 0; i < n; ++i) {
    Access a;
    a.addr = static_cast<Addr>(i) * kLineSize;
    t.push(a);
  }
  return t;
}

TEST_F(TraceCacheTest, SameKeyReturnsSamePointer) {
  TraceCache& c = TraceCache::instance();
  const TraceCacheKey key{7, 100, 42};
  const auto a = c.get_or_generate(key, [] { return tiny_trace("a", 100); });
  const auto b = c.get_or_generate(key, [] { return tiny_trace("b", 999); });
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(b->name(), "a") << "second generate() must never run";
  const auto s = c.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.resident_entries, 1u);
}

TEST_F(TraceCacheTest, DistinctKeysGenerateSeparately) {
  TraceCache& c = TraceCache::instance();
  const auto a =
      c.get_or_generate({1, 10, 1}, [] { return tiny_trace("x", 10); });
  const auto b =
      c.get_or_generate({1, 10, 2}, [] { return tiny_trace("y", 10); });
  const auto d =
      c.get_or_generate({1, 11, 1}, [] { return tiny_trace("z", 11); });
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a.get(), d.get());
  EXPECT_EQ(c.stats().misses, 3u);
}

TEST_F(TraceCacheTest, ConcurrentFirstRequestsGenerateOnce) {
  TraceCache& c = TraceCache::instance();
  std::atomic<int> generations{0};
  const TraceCacheKey key{2, 5'000, 7};

  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const Trace>> results(8);
  for (std::size_t t = 0; t < results.size(); ++t) {
    threads.emplace_back([&, t] {
      results[t] = c.get_or_generate(key, [&] {
        generations.fetch_add(1);
        return tiny_trace("shared", 5'000);
      });
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(generations.load(), 1);
  for (const auto& r : results) {
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r.get(), results[0].get());
  }
  const auto s = c.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 7u);
}

TEST_F(TraceCacheTest, GeneratorExceptionDoesNotPoisonKey) {
  TraceCache& c = TraceCache::instance();
  const TraceCacheKey key{3, 10, 1};
  EXPECT_THROW(c.get_or_generate(
                   key, []() -> Trace { throw std::runtime_error("gen"); }),
               std::runtime_error);
  // A later request with a working generator must succeed.
  const auto ok = c.get_or_generate(key, [] { return tiny_trace("ok", 10); });
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->name(), "ok");
}

TEST_F(TraceCacheTest, CapacityEvictsUnreferencedLru) {
  TraceCache& c = TraceCache::instance();
  // Three ~64 KB traces against a budget that holds roughly one of them.
  const std::size_t n = 4'000;
  {
    auto a = c.get_or_generate({9, n, 1}, [&] { return tiny_trace("a", n); });
    auto b = c.get_or_generate({9, n, 2}, [&] { return tiny_trace("b", n); });
    EXPECT_EQ(a->size(), n);
    EXPECT_EQ(b->size(), n);
  }  // both now unreferenced
  c.set_capacity_bytes(sizeof(Access) * n * 3 / 2);
  EXPECT_GE(c.stats().evictions, 1u);
  EXPECT_LE(c.stats().resident_bytes, c.capacity_bytes());
  c.set_capacity_bytes(1024ull << 20);
}

TEST_F(TraceCacheTest, ReferencedEntriesSurviveEviction) {
  TraceCache& c = TraceCache::instance();
  const std::size_t n = 4'000;
  auto held = c.get_or_generate({8, n, 1}, [&] { return tiny_trace("h", n); });
  c.set_capacity_bytes(1);  // budget nothing: only unreferenced entries go
  const auto again =
      c.get_or_generate({8, n, 1}, [&] { return tiny_trace("h2", n); });
  EXPECT_EQ(again.get(), held.get()) << "live entries must never be evicted";
  c.set_capacity_bytes(1024ull << 20);
}

// Eviction under pressure: four workers churn distinct keys while pinning
// their last few results, so publishes constantly race pinned entries and
// other keys' in-flight generations. Pins may push residency over budget
// transiently; once every pin is gone, the budget must hold again and
// clear() must account back down to exactly zero (any drift in the
// resident-bytes bookkeeping shows up here as a nonzero remainder).
TEST_F(TraceCacheTest, EvictionUnderPressureHoldsBudgetAndAccounting) {
  TraceCache& c = TraceCache::instance();
  const std::size_t n = 4'000;  // ~64 KB per trace
  const std::uint64_t budget = sizeof(Access) * n * 3;
  c.set_capacity_bytes(budget);

  std::vector<std::thread> threads;
  for (unsigned t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      std::deque<std::shared_ptr<const Trace>> held;
      for (std::uint64_t i = 0; i < 24; ++i) {
        held.push_back(c.get_or_generate(
            {40 + t, n, i}, [&] { return tiny_trace("pressure", n); }));
        if (held.size() > 3) held.pop_front();
      }
    });
  }
  for (auto& th : threads) th.join();

  // All pins released. The next access — hit or miss — must re-converge
  // the cache to its budget; the caller's own copy is the only legal pin.
  const auto last = c.get_or_generate(
      {40, n, 23}, [&] { return tiny_trace("pressure", n); });
  EXPECT_LE(c.stats().resident_bytes, budget);

  c.set_capacity_bytes(1024ull << 20);
  c.clear();
  // `last` still pins its entry if resident; everything else must be gone
  // and the byte ledger must match the survivors exactly.
  const auto s = c.stats();
  EXPECT_LE(s.resident_entries, 1u);
  if (s.resident_entries == 0) {
    EXPECT_EQ(s.resident_bytes, 0u);
  }
}

// The budget holds even while a shared_future generation is in flight: the
// in-flight entry is unevictable (and contributes zero bytes until it
// publishes), but churn around it must keep evicting.
TEST_F(TraceCacheTest, BudgetEnforcedWhileGenerationInFlight) {
  TraceCache& c = TraceCache::instance();
  const std::size_t n = 4'000;
  const std::uint64_t budget = sizeof(Access) * n * 3;
  c.set_capacity_bytes(budget);

  std::promise<void> unblock;
  std::shared_future<void> gate = unblock.get_future().share();
  std::atomic<bool> started{false};
  std::thread slow([&] {
    (void)c.get_or_generate({60, n, 0}, [&] {
      started.store(true);
      gate.wait();
      return tiny_trace("slow", n);
    });
  });
  while (!started.load()) std::this_thread::yield();

  // Churn unpinned keys past the budget while the slow generation holds
  // its key in flight: every publish must leave residency within budget.
  for (std::uint64_t i = 1; i <= 12; ++i) {
    (void)c.get_or_generate({60, n, i},
                            [&] { return tiny_trace("churn", n); });
    EXPECT_LE(c.stats().resident_bytes, budget) << "after key " << i;
  }
  unblock.set_value();
  slow.join();
  // The slow entry published after the churn; the next access settles it.
  (void)c.get_or_generate({60, n, 1},
                          [&] { return tiny_trace("churn", n); });
  EXPECT_LE(c.stats().resident_bytes, budget);
  c.set_capacity_bytes(1024ull << 20);
}

// The accounting-drift regression this suite exposed: publishes while every
// entry is pinned legitimately overshoot the budget, but releasing those
// pins used to leave the cache over budget *forever* — eviction only ran on
// publish and set_capacity, never on hits. A plain hit must re-converge.
TEST_F(TraceCacheTest, ReleasedPinsReconvergeOnNextHit) {
  TraceCache& c = TraceCache::instance();
  const std::size_t n = 4'000;
  const std::uint64_t budget = sizeof(Access) * n * 2;
  c.set_capacity_bytes(budget);

  auto a = c.get_or_generate({70, n, 1}, [&] { return tiny_trace("a", n); });
  auto b = c.get_or_generate({70, n, 2}, [&] { return tiny_trace("b", n); });
  auto d = c.get_or_generate({70, n, 3}, [&] { return tiny_trace("d", n); });
  // Three pinned traces against a two-trace budget: nothing is evictable,
  // so the cache is legitimately over budget right now.
  EXPECT_GT(c.stats().resident_bytes, budget);

  a.reset();
  b.reset();
  d.reset();
  // A pure hit — no publish, no capacity change — must enforce the budget.
  (void)c.get_or_generate({70, n, 3}, [&] { return tiny_trace("d2", n); });
  EXPECT_LE(c.stats().resident_bytes, budget);
  c.set_capacity_bytes(1024ull << 20);
}

TEST_F(TraceCacheTest, RunnersShareSuiteTraces) {
  ExperimentRunner a({AppId::Launcher, AppId::Email}, 20'000, 1);
  ExperimentRunner b({AppId::Launcher, AppId::Email}, 20'000, 1);
  ASSERT_EQ(a.traces().size(), 2u);
  EXPECT_EQ(a.traces()[0].get(), b.traces()[0].get());
  EXPECT_EQ(a.traces()[1].get(), b.traces()[1].get());
  // Different seed, different trace object.
  ExperimentRunner d({AppId::Launcher, AppId::Email}, 20'000, 2);
  EXPECT_NE(a.traces()[0].get(), d.traces()[0].get());
}

TEST_F(TraceCacheTest, CachedAppTraceMatchesGenerator) {
  const auto cached = cached_app_trace(AppId::Browser, 10'000, 5);
  const Trace fresh = generate_app_trace(AppId::Browser, 10'000, 5);
  ASSERT_EQ(cached->size(), fresh.size());
  EXPECT_EQ(cached->name(), fresh.name());
  for (std::size_t i = 0; i < fresh.size(); i += 997) {
    EXPECT_EQ((*cached)[i].addr, fresh[i].addr) << i;
  }
}

}  // namespace
}  // namespace mobcache
