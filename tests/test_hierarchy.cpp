#include "sim/hierarchy.hpp"

#include <gtest/gtest.h>

#include "core/shared_l2.hpp"
#include "sim/cpi_model.hpp"

namespace mobcache {
namespace {

SharedL2Config small_l2_cfg() {
  SharedL2Config c;
  c.cache.name = "L2";
  c.cache.size_bytes = 256ull << 10;
  c.cache.assoc = 8;
  return c;
}

/// Owns the L2 alongside the hierarchy so tests keep a one-liner setup.
struct Rig {
  Rig() : l2(small_l2_cfg()), h(HierarchyConfig{}, l2) {}
  SharedL2 l2;
  MemoryHierarchy h;
};

Access user_read(Addr a) {
  Access x;
  x.addr = a;
  x.type = AccessType::Read;
  x.mode = Mode::User;
  return x;
}

Access user_write(Addr a) {
  Access x = user_read(a);
  x.type = AccessType::Write;
  return x;
}

Access ifetch(Addr a) {
  Access x = user_read(a);
  x.type = AccessType::InstFetch;
  return x;
}

TEST(Hierarchy, L1HitIsFree) {
  Rig rig;
  MemoryHierarchy& h = rig.h;
  h.access(user_read(0x1000), 0);  // cold miss
  const Cycle stall = h.access(user_read(0x1000), 10);
  EXPECT_EQ(stall, 0u);
  EXPECT_EQ(h.l1d_stats().total_hits(), 1u);
}

TEST(Hierarchy, L1MissStallsThroughL2) {
  Rig rig;
  MemoryHierarchy& h = rig.h;
  const Cycle stall = h.access(user_read(0x1000), 0);
  // Cold: misses L1 and L2 → L1 latency + L2 read + DRAM visible stall.
  EXPECT_EQ(stall, 1 + tech_constants::kSramLat2Mb +
                       tech_constants::kDramVisibleStall);
  EXPECT_EQ(h.l2().aggregate_stats().total_accesses(), 1u);
}

TEST(Hierarchy, L2HitCheaperThanMiss) {
  Rig rig;
  MemoryHierarchy& h = rig.h;
  h.access(user_read(0x1000), 0);
  // Evict from tiny L1 by conflicting lines, keeping L2 resident.
  const std::uint64_t l1_sets = (32ull << 10) / (kLineSize * 4);
  for (int i = 1; i <= 8; ++i)
    h.access(user_read(0x1000 + i * l1_sets * kLineSize), 10 * i);
  const Cycle stall = h.access(user_read(0x1000), 1000);
  EXPECT_EQ(stall, 1 + tech_constants::kSramLat2Mb);  // L2 hit, no DRAM
}

TEST(Hierarchy, IfetchGoesToL1I) {
  Rig rig;
  MemoryHierarchy& h = rig.h;
  h.access(ifetch(0x4000), 0);
  EXPECT_EQ(h.l1i_stats().total_accesses(), 1u);
  EXPECT_EQ(h.l1d_stats().total_accesses(), 0u);
  h.access(user_read(0x4000), 1);  // same line via data port: separate L1
  EXPECT_EQ(h.l1d_stats().total_accesses(), 1u);
  EXPECT_EQ(h.l1d_stats().total_hits(), 0u);  // L1I and L1D are split
}

TEST(Hierarchy, StoresArePosted) {
  Rig rig;
  MemoryHierarchy& h = rig.h;
  EXPECT_EQ(h.access(user_write(0x2000), 0), 0u);  // even a cold store
}

TEST(Hierarchy, DirtyL1VictimWritesBackToL2WithOwnerMode) {
  Rig rig;
  MemoryHierarchy& h = rig.h;
  // Dirty a kernel line in L1D, then evict it with user conflicts.
  Access kw;
  kw.addr = kKernelSpaceBase;
  kw.type = AccessType::Write;
  kw.mode = Mode::Kernel;
  h.access(kw, 0);

  const std::uint64_t l1_sets = (32ull << 10) / (kLineSize * 4);
  // Lines conflicting with kKernelSpaceBase's L1 set (set 0).
  for (int i = 1; i <= 4; ++i)
    h.access(user_read(i * l1_sets * kLineSize), 10 * i);

  // The L2 must have received a kernel-owned write (the castout) beyond the
  // five demand fetches.
  const CacheStats l2 = h.l2().aggregate_stats();
  EXPECT_EQ(l2.accesses[static_cast<int>(Mode::Kernel)], 2u)
      << "demand fetch + castout, both attributed to kernel";
}

TEST(Hierarchy, L1EnergyAccrues) {
  Rig rig;
  MemoryHierarchy& h = rig.h;
  h.access(user_read(0x1000), 0);
  const double after_miss = h.l1_energy_nj();
  EXPECT_GT(after_miss, 0.0);
  h.access(user_read(0x1000), 1);
  EXPECT_GT(h.l1_energy_nj(), after_miss);
  h.finalize(1000);
  EXPECT_GT(h.l1_energy_nj(), after_miss);  // leakage settled
}

TEST(Hierarchy, FinalizeIsIdempotent) {
  Rig rig;
  MemoryHierarchy& h = rig.h;
  h.access(user_read(0x1000), 0);
  h.finalize(100);
  const double e = h.l1_energy_nj();
  h.finalize(100);
  EXPECT_EQ(h.l1_energy_nj(), e);
}

TEST(CpiModel, BaseAndStallArithmetic) {
  TimingParams tp;
  tp.base_cpi = 2.0;
  CpiModel m(tp);
  EXPECT_EQ(m.now(), 0u);
  m.retire(0);
  EXPECT_EQ(m.now(), 2u);
  m.retire(10);
  EXPECT_EQ(m.now(), 14u);
  EXPECT_EQ(m.records(), 2u);
  EXPECT_EQ(m.stall_cycles(), 10u);
  EXPECT_DOUBLE_EQ(m.cpi(), 7.0);
}

TEST(CpiModel, EmptyCpiIsZero) {
  CpiModel m;
  EXPECT_EQ(m.cpi(), 0.0);
}

}  // namespace
}  // namespace mobcache
