/// \file test_batch.cpp
/// Single-pass batch sweep engine (sim/batch.hpp, cache/config_batch.hpp,
/// ExperimentRunner::run_designs): the batched path's whole contract is
/// byte-identity with the per-point path, so nearly every test here pins
/// the two against each other — SimResults via the exact result-store
/// record serialization, result-store keys across paths, and the keep-going
/// failure manifests. The ShadowConfigBatch estimator is checked against a
/// brute-force LRU-stack reference.

#include "sim/batch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "cache/config_batch.hpp"
#include "common/cancel.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "exp/bench_harness.hpp"
#include "exp/result_store.hpp"
#include "exp/runner.hpp"
#include "workload/suite.hpp"

namespace mobcache {
namespace {

namespace fs = std::filesystem;

/// Forwarding L2 wrapper with a per-access hook — the seam for injecting
/// lane-local faults and mid-replay cancellation into batch tests.
class HookedL2 final : public L2Interface {
 public:
  HookedL2(std::unique_ptr<L2Interface> inner,
           std::function<void(std::uint64_t)> hook)
      : inner_(std::move(inner)), hook_(std::move(hook)) {}

  L2Result access(Addr line, AccessType type, Mode mode, Cycle now) override {
    hook_(++accesses_);
    return inner_->access(line, type, mode, now);
  }
  void writeback(Addr line, Mode owner, Cycle now) override {
    inner_->writeback(line, owner, now);
  }
  void prefetch(Addr line, Mode mode, Cycle now) override {
    inner_->prefetch(line, mode, now);
  }
  void finalize(Cycle end) override { inner_->finalize(end); }
  const EnergyBreakdown& energy() const override { return inner_->energy(); }
  CacheStats aggregate_stats() const override {
    return inner_->aggregate_stats();
  }
  std::uint64_t capacity_bytes() const override {
    return inner_->capacity_bytes();
  }
  double avg_enabled_bytes() const override {
    return inner_->avg_enabled_bytes();
  }
  std::uint32_t quarantined_ways() const override {
    return inner_->quarantined_ways();
  }
  std::string describe() const override { return inner_->describe(); }
  void set_eviction_observer(
      std::function<void(const EvictionEvent&)> obs) override {
    inner_->set_eviction_observer(std::move(obs));
  }
  void add_eviction_observer(
      std::function<void(const EvictionEvent&)> obs) override {
    inner_->add_eviction_observer(std::move(obs));
  }

 private:
  std::unique_ptr<L2Interface> inner_;
  std::function<void(std::uint64_t)> hook_;
  std::uint64_t accesses_ = 0;
};

// ---- eligibility ---------------------------------------------------------

TEST(BatchEligible, DefaultOptionsAreEligible) {
  EXPECT_TRUE(batch_eligible(SimOptions{}));
}

TEST(BatchEligible, AnyL2ToL1ChannelDisqualifies) {
  SimOptions inclusive;
  inclusive.hierarchy.inclusive_l2 = true;
  EXPECT_FALSE(batch_eligible(inclusive));

  SimOptions prefetch;
  prefetch.hierarchy.prefetch.enabled = true;
  EXPECT_FALSE(batch_eligible(prefetch));

  SimOptions telemetry;
  Telemetry session;
  telemetry.telemetry = &session;
  EXPECT_FALSE(batch_eligible(telemetry));

  SimOptions observer;
  observer.l2_eviction_observer = [](const EvictionEvent&) {};
  EXPECT_FALSE(batch_eligible(observer));
}

// ---- demand stream -------------------------------------------------------

TEST(BatchStream, CountsMatchTheSharedL1Pass) {
  const Trace trace = generate_app_trace(AppId::Launcher, 40'000, 7);
  const SimOptions opts;
  const DemandStream s = build_demand_stream(trace, opts);

  EXPECT_EQ(s.total_records, trace.size());
  EXPECT_EQ(s.workload, trace.name());
  // One demand record per L1 miss, nothing more.
  EXPECT_EQ(s.size(), s.l1i.total_misses() + s.l1d.total_misses());
  EXPECT_GT(s.size(), 0u);
  EXPECT_GT(s.l1_dynamic_nj, 0.0);

  // SoA lanes stay aligned; record indices are the retire-order clock base.
  ASSERT_EQ(s.record.size(), s.size());
  ASSERT_EQ(s.flags.size(), s.size());
  ASSERT_EQ(s.wb_line.size(), s.size());
  std::uint64_t prev = 0;
  for (std::size_t e = 0; e < s.size(); ++e) {
    EXPECT_GE(s.record[e], prev);
    EXPECT_LT(s.record[e], s.total_records);
    prev = s.record[e];
    if ((s.flags[e] & DemandStream::kWriteback) == 0) {
      EXPECT_EQ(s.wb_line[e], 0u);
    }
  }
}

// ---- batch replay vs simulate() ------------------------------------------

TEST(BatchSim, MixedSchemeBatchMatchesSimulateForEveryScheme) {
  const Trace trace = generate_app_trace(AppId::Browser, 40'000, 11);
  const SimOptions opts;

  // All nine schemes as lanes of ONE batch — the mixed-kind stress case.
  std::vector<std::unique_ptr<L2Interface>> designs;
  std::vector<L2Interface*> lanes;
  for (int k = 0; k < kSchemeCount; ++k) {
    designs.push_back(build_scheme(static_cast<SchemeKind>(k)));
    lanes.push_back(designs.back().get());
  }
  const std::vector<SimResult> batched = simulate_batch(trace, lanes, opts);
  ASSERT_EQ(batched.size(), static_cast<std::size_t>(kSchemeCount));

  for (int k = 0; k < kSchemeCount; ++k) {
    const std::unique_ptr<L2Interface> ref =
        build_scheme(static_cast<SchemeKind>(k));
    const SimResult expect = simulate(trace, *ref, opts);
    EXPECT_EQ(result_to_record_json(batched[static_cast<std::size_t>(k)]),
              result_to_record_json(expect))
        << "scheme " << scheme_name(static_cast<SchemeKind>(k));
  }
}

TEST(BatchSim, LaneErrorIsConfinedToItsLane) {
  const Trace trace = generate_app_trace(AppId::Email, 30'000, 3);
  const SimOptions opts;
  const DemandStream stream = build_demand_stream(trace, opts);

  auto good = build_scheme(SchemeKind::BaselineSram);
  HookedL2 bad(build_scheme(SchemeKind::BaselineSram),
               [](std::uint64_t n) {
                 if (n == 100) throw NumericError("injected lane fault");
               });
  std::vector<L2Interface*> lanes{good.get(), &bad};
  const std::vector<BatchLaneOutcome> out =
      simulate_batch_lanes(stream, lanes, opts);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(out[0].ok());
  ASSERT_FALSE(out[1].ok());
  EXPECT_THROW(std::rethrow_exception(out[1].error), NumericError);

  // The healthy lane is untouched by its neighbour's death.
  const std::unique_ptr<L2Interface> ref =
      build_scheme(SchemeKind::BaselineSram);
  EXPECT_EQ(result_to_record_json(*out[0].result),
            result_to_record_json(simulate(trace, *ref, opts)));
}

TEST(BatchSim, PreCancelledTokenAbortsTheSharedPass) {
  // The poll cadence is kCancelPollStride records, so the trace must span
  // at least one chunk boundary for the token to be observed.
  const Trace trace =
      generate_app_trace(AppId::Launcher, kCancelPollStride + 5'000, 7);
  CancelToken token;
  token.request_cancel();
  SimOptions opts;
  opts.cancel = &token;
  std::unique_ptr<L2Interface> l2 = build_scheme(SchemeKind::BaselineSram);
  std::vector<L2Interface*> lanes{l2.get()};
  EXPECT_THROW(simulate_batch(trace, lanes, opts), CancelledError);
}

// ---- ExperimentRunner batched path ---------------------------------------

std::vector<DesignSpec> mixed_grid() {
  std::vector<DesignSpec> specs;
  specs.push_back(scheme_design(SchemeKind::BaselineSram));
  SchemeParams lo_hi;
  lo_hi.mrstt_user = RetentionClass::Lo;
  lo_hi.mrstt_kernel = RetentionClass::Hi;
  specs.push_back(scheme_design(SchemeKind::StaticPartMrstt, lo_hi));
  SchemeParams small;
  small.baseline_bytes = 512ull << 10;
  small.baseline_assoc = 8;
  specs.push_back(scheme_design(SchemeKind::BaselineSram, small));
  specs.push_back(scheme_design(SchemeKind::DynamicStt));
  specs.push_back(scheme_design(SchemeKind::StaticPartMrstt));
  return specs;
}

void expect_suite_equal(const SchemeSuiteResult& a,
                        const SchemeSuiteResult& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_DOUBLE_EQ(a.avg_miss_rate, b.avg_miss_rate);
  ASSERT_EQ(a.per_workload.size(), b.per_workload.size());
  for (std::size_t w = 0; w < a.per_workload.size(); ++w) {
    EXPECT_EQ(result_to_record_json(a.per_workload[w]),
              result_to_record_json(b.per_workload[w]));
  }
}

TEST(RunnerBatch, RunDesignsByteIdenticalAcrossBatchAndJobs) {
  const std::vector<DesignSpec> specs = mixed_grid();

  ExperimentRunner per_point({AppId::Launcher, AppId::Email}, 30'000, 42);
  const std::vector<SchemeSuiteResult> expect = per_point.run_designs(specs);

  // Full-grid batch, chunked batch (lane cap smaller than the grid), and a
  // parallel batched run must all reproduce the per-point bytes.
  for (const auto& [batch, jobs] :
       std::vector<std::pair<unsigned, unsigned>>{{8, 1}, {2, 1}, {8, 2}}) {
    ExperimentRunner r({AppId::Launcher, AppId::Email}, 30'000, 42);
    r.sweep_batch = batch;
    r.jobs = jobs;
    ASSERT_TRUE(r.batchable());
    const std::vector<SchemeSuiteResult> got = r.run_designs(specs);
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < got.size(); ++i)
      expect_suite_equal(got[i], expect[i]);
  }
}

TEST(RunnerBatch, RunSchemesDelegatesToTheBatchedPath) {
  const std::vector<SchemeKind> kinds{SchemeKind::BaselineSram,
                                      SchemeKind::StaticPartMrstt,
                                      SchemeKind::DynamicStt};
  ExperimentRunner per_point({AppId::Maps}, 30'000, 9);
  ExperimentRunner batched({AppId::Maps}, 30'000, 9);
  batched.sweep_batch = 8;
  ASSERT_TRUE(batched.batchable());
  const auto expect = per_point.run_schemes(kinds);
  const auto got = batched.run_schemes(kinds);
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    expect_suite_equal(got[i], expect[i]);
}

TEST(RunnerBatch, IneligibleConfigurationFallsBackPerPoint) {
  ExperimentRunner r({AppId::Launcher}, 20'000, 1);
  r.sweep_batch = 8;
  ASSERT_TRUE(r.batchable());
  r.sim_options.hierarchy.inclusive_l2 = true;
  EXPECT_FALSE(r.batchable());
  // The fallback still runs the grid correctly under the ineligible config.
  const auto got = r.run_designs({scheme_design(SchemeKind::BaselineSram)});
  ASSERT_EQ(got.size(), 1u);
  EXPECT_GT(got[0].per_workload[0].records, 0u);

  ExperimentRunner t({AppId::Launcher}, 20'000, 1);
  t.sweep_batch = 8;
  t.collect_telemetry = true;
  EXPECT_FALSE(t.batchable());
}

TEST(RunnerBatch, KeepGoingManifestMatchesPerPoint) {
  const std::vector<DesignSpec> specs = mixed_grid();
  const auto hook = [](std::size_t i) {
    if (i == 2) {
      NumericError err("injected chaos fault");
      err.with_point(i);
      throw err;
    }
  };

  ExperimentRunner per_point({AppId::Launcher, AppId::Email}, 30'000, 42);
  const auto expect =
      per_point.run_designs_outcomes(specs, /*keep_going=*/true, hook);

  ExperimentRunner batched({AppId::Launcher, AppId::Email}, 30'000, 42);
  batched.sweep_batch = 8;
  const auto got =
      batched.run_designs_outcomes(specs, /*keep_going=*/true, hook);

  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].ok(), expect[i].ok()) << "point " << i;
    if (got[i].ok()) {
      expect_suite_equal(*got[i].value, *expect[i].value);
    } else {
      EXPECT_EQ(got[i].failure->index, expect[i].failure->index);
      EXPECT_EQ(got[i].failure->error_type, expect[i].failure->error_type);
      EXPECT_EQ(got[i].failure->message, expect[i].failure->message);
      EXPECT_FALSE(got[i].failure->quarantined);
    }
  }
  EXPECT_FALSE(got[2].ok());
  EXPECT_EQ(got[2].failure->error_type, "numeric");
}

TEST(RunnerBatch, FailFastPropagatesTheInjectedFault) {
  ExperimentRunner r({AppId::Launcher}, 20'000, 1);
  r.sweep_batch = 8;
  const auto hook = [](std::size_t i) {
    if (i == 1) throw NumericError("injected chaos fault");
  };
  EXPECT_THROW(r.run_designs_outcomes(mixed_grid(), /*keep_going=*/false,
                                      hook),
               NumericError);
}

// ---- result-store interchange --------------------------------------------

class BatchStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("mobcache_batch_") + info->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }

  fs::path dir_;
};

TEST_F(BatchStoreTest, BatchedWarmRunServesPerPointColdRecords) {
  const std::vector<DesignSpec> specs = mixed_grid();
  {
    ResultStore cold(dir());
    ExperimentRunner r({AppId::Launcher, AppId::Email}, 30'000, 42);
    r.result_store = &cold;
    (void)r.run_designs(specs);  // per-point cold run populates the store
    EXPECT_EQ(cold.stats().stores, specs.size() * 2);
  }
  ResultStore warm(dir());
  ExperimentRunner r({AppId::Launcher, AppId::Email}, 30'000, 42);
  r.result_store = &warm;
  r.sweep_batch = 8;
  ASSERT_TRUE(r.batchable());
  const auto got = r.run_designs(specs);

  ExperimentRunner ref({AppId::Launcher, AppId::Email}, 30'000, 42);
  const auto expect = ref.run_designs(specs);
  for (std::size_t i = 0; i < got.size(); ++i)
    expect_suite_equal(got[i], expect[i]);
  // Every (design × workload) cell was served from the per-point records —
  // the two paths key identically.
  EXPECT_EQ(warm.stats().hits, specs.size() * 2);
  EXPECT_EQ(warm.stats().misses, 0u);
}

TEST_F(BatchStoreTest, PerPointWarmRunServesBatchedColdRecords) {
  const std::vector<DesignSpec> specs = mixed_grid();
  {
    ResultStore cold(dir());
    ExperimentRunner r({AppId::Launcher, AppId::Email}, 30'000, 42);
    r.result_store = &cold;
    r.sweep_batch = 8;
    (void)r.run_designs(specs);  // batched cold run populates the store
    EXPECT_EQ(cold.stats().stores, specs.size() * 2);
  }
  ResultStore warm(dir());
  ExperimentRunner r({AppId::Launcher, AppId::Email}, 30'000, 42);
  r.result_store = &warm;
  (void)r.run_designs(specs);
  EXPECT_EQ(warm.stats().hits, specs.size() * 2);
  EXPECT_EQ(warm.stats().misses, 0u);
}

TEST_F(BatchStoreTest, CancellationMidSweepResumesFromTheStore) {
  // A lane flips the token during workload 0's replay; the cancellation is
  // observed at workload 1's first poll stride, after workload 0's completed
  // cells reached the store. The rerun then resumes from those records.
  const std::uint64_t len = kCancelPollStride + 10'000;
  CancelToken token;
  std::vector<DesignSpec> specs;
  specs.push_back(scheme_design(SchemeKind::BaselineSram));
  specs.push_back(scheme_design(SchemeKind::StaticPartMrstt));
  DesignSpec saboteur;
  saboteur.name = "saboteur";
  saboteur.build = [&token] {
    return std::make_unique<HookedL2>(
        build_scheme(SchemeKind::BaselineSram),
        [&token](std::uint64_t n) {
          if (n == 1) token.request_cancel();
        });
  };  // no design_hash: the saboteur itself is never memoized
  specs.push_back(std::move(saboteur));

  {
    ResultStore store(dir());
    ExperimentRunner r({AppId::Launcher, AppId::Email}, len, 42);
    r.result_store = &store;
    r.sweep_batch = 8;
    r.sim_options.cancel = &token;
    EXPECT_THROW(r.run_designs_outcomes(specs, /*keep_going=*/true),
                 CancelledError);
    EXPECT_GE(store.stats().stores, 2u);  // workload 0's hashed cells landed
  }

  token.reset();
  specs.pop_back();  // resume the real grid without the saboteur
  ResultStore store(dir());
  ExperimentRunner r({AppId::Launcher, AppId::Email}, len, 42);
  r.result_store = &store;
  r.sweep_batch = 8;
  const auto got = r.run_designs(specs);
  EXPECT_GE(store.stats().hits, 2u);

  ExperimentRunner ref({AppId::Launcher, AppId::Email}, len, 42);
  const auto expect = ref.run_designs(specs);
  for (std::size_t i = 0; i < got.size(); ++i)
    expect_suite_equal(got[i], expect[i]);
}

// ---- ShadowConfigBatch ---------------------------------------------------

/// Brute-force per-set LRU stacks — the reference the SoA implementation
/// must agree with exactly when every set is monitored (sample_shift 0).
struct ReferenceStacks {
  explicit ReferenceStacks(const ShadowGeometry& g)
      : geom(g), sets(g.num_sets), hits_at_depth(g.assoc, 0) {}

  void observe(Addr line) {
    const Addr block = line / kLineSize;
    auto& stack = sets[static_cast<std::size_t>(block % geom.num_sets)];
    ++accesses;
    for (std::size_t d = 0; d < stack.size(); ++d) {
      if (stack[d] == block) {
        ++hits_at_depth[d];
        stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(d));
        stack.insert(stack.begin(), block);
        return;
      }
    }
    stack.insert(stack.begin(), block);
    if (stack.size() > geom.assoc) stack.pop_back();
  }

  std::uint64_t hits_with_ways(std::uint32_t ways) const {
    std::uint64_t h = 0;
    for (std::uint32_t d = 0; d < std::min(ways, geom.assoc); ++d)
      h += hits_at_depth[d];
    return h;
  }

  ShadowGeometry geom;
  std::vector<std::vector<Addr>> sets;
  std::vector<std::uint64_t> hits_at_depth;
  std::uint64_t accesses = 0;
};

TEST(ShadowBatch, UnsampledLanesMatchReferenceLruStacks) {
  const std::vector<ShadowGeometry> geoms{{16, 4}, {64, 8}, {32, 2}};
  ShadowConfigBatch batch(geoms, /*sample_shift=*/0);
  std::vector<ReferenceStacks> refs(geoms.begin(), geoms.end());

  Rng rng(99);
  for (int i = 0; i < 5'000; ++i) {
    const Addr line = rng.below(2'048) * kLineSize;
    batch.observe(line);
    for (ReferenceStacks& r : refs) r.observe(line);
  }
  for (std::size_t g = 0; g < geoms.size(); ++g) {
    EXPECT_EQ(batch.observed_accesses(g), refs[g].accesses);
    for (std::uint32_t w = 1; w <= geoms[g].assoc; ++w) {
      EXPECT_EQ(batch.hits_with_ways(g, w), refs[g].hits_with_ways(w))
          << "lane " << g << " ways " << w;
    }
  }
}

TEST(ShadowBatch, HitsAreMonotonicInWaysAndRatesBounded) {
  ShadowConfigBatch batch({{128, 8}}, /*sample_shift=*/2);
  Rng rng(7);
  for (int i = 0; i < 20'000; ++i)
    batch.observe(rng.below(8'192) * kLineSize);

  std::uint64_t prev = 0;
  for (std::uint32_t w = 1; w <= 8; ++w) {
    const std::uint64_t h = batch.hits_with_ways(0, w);
    EXPECT_GE(h, prev);
    prev = h;
    const double rate = batch.estimated_miss_rate(0, w);
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
  }
  // Sampled counters are scaled back up by the 1 << shift factor.
  EXPECT_EQ(batch.observed_accesses(0) % 4, 0u);
}

TEST(ShadowBatch, EstimationSeamCoversEveryLane) {
  const Trace trace = generate_app_trace(AppId::Browser, 30'000, 5);
  const DemandStream stream = build_demand_stream(trace, SimOptions{});
  ShadowConfigBatch shadow({{2048, 16}, {2048, 8}, {1024, 16}},
                           /*sample_shift=*/0);
  const std::vector<double> rates = estimate_demand_miss_rates(stream, shadow);
  ASSERT_EQ(rates.size(), 3u);
  for (const double r : rates) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
  // Same sets, fewer ways: the 8-way estimate cannot out-hit the 16-way.
  EXPECT_GE(rates[1], rates[0]);
}

TEST(ShadowBatch, RejectsDegenerateGeometry) {
  const std::vector<ShadowGeometry> zero_sets{{0, 4}};
  const std::vector<ShadowGeometry> zero_ways{{16, 0}};
  EXPECT_THROW(ShadowConfigBatch batch(zero_sets), std::invalid_argument);
  EXPECT_THROW(ShadowConfigBatch batch(zero_ways), std::invalid_argument);
}

// ---- bench_sweep_batch CLI/env parsing -----------------------------------

unsigned parse_batch(std::vector<std::string> args) {
  std::vector<char*> argv{const_cast<char*>("bench")};
  for (std::string& a : args) argv.push_back(a.data());
  return bench_sweep_batch(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchSweepBatch, FlagAndEnvParsing) {
  unsetenv("MOBCACHE_SWEEP_BATCH");
  EXPECT_EQ(parse_batch({}), 1u);
  EXPECT_EQ(parse_batch({"--batch=4"}), 4u);
  EXPECT_EQ(parse_batch({"--batch"}), 16u);       // bare flag = default cap
  EXPECT_EQ(parse_batch({"--batch=0"}), 1u);      // 0/1 mean per-point
  EXPECT_EQ(parse_batch({"--batch=1"}), 1u);
  EXPECT_THROW(parse_batch({"--batch=abc"}), ConfigError);
  EXPECT_THROW(parse_batch({"--batch=9999"}), ConfigError);

  setenv("MOBCACHE_SWEEP_BATCH", "8", 1);
  EXPECT_EQ(parse_batch({}), 8u);
  EXPECT_EQ(parse_batch({"--batch=4"}), 4u);      // the flag wins
  setenv("MOBCACHE_SWEEP_BATCH", "garbage", 1);
  EXPECT_THROW(parse_batch({}), EnvError);
  unsetenv("MOBCACHE_SWEEP_BATCH");
}

}  // namespace
}  // namespace mobcache
