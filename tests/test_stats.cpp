#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace mobcache {
namespace {

/// Deterministic wide-range sample set (spans several octaves, includes
/// repeats and zeros) used by the merge property tests below.
std::vector<double> property_samples(std::size_t n) {
  std::vector<double> v;
  v.reserve(n);
  std::uint64_t x = 0x2545f4914f6cdd1dull;
  for (std::size_t i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    if (i % 97 == 0) {
      v.push_back(0.0);
    } else {
      // Magnitudes from ~1e-3 to ~1e6.
      const double mant = 1.0 + static_cast<double>(x % 1000) / 1000.0;
      const int exp = static_cast<int>(x >> 60) * 2 - 10;
      v.push_back(std::ldexp(mant, exp));
    }
  }
  return v;
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStat, KnownSequence) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic sequence: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStat, SingleValueHasZeroVariance) {
  RunningStat s;
  s.add(3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
}

TEST(RunningStat, MergeMatchesSinglePass) {
  // Split one stream across two accumulators; the merge must agree with a
  // single accumulator that saw everything (parallel Welford).
  RunningStat all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double v = 0.37 * i * i - 5.0 * i + 2.25;
    all.add(v);
    (i % 3 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmptySides) {
  RunningStat filled, empty;
  filled.add(1.0);
  filled.add(3.0);

  RunningStat lhs = filled;
  lhs.merge(empty);  // no-op
  EXPECT_EQ(lhs.count(), 2u);
  EXPECT_DOUBLE_EQ(lhs.mean(), 2.0);

  RunningStat rhs;
  rhs.merge(filled);  // adopt wholesale
  EXPECT_EQ(rhs.count(), 2u);
  EXPECT_DOUBLE_EQ(rhs.mean(), 2.0);
  EXPECT_DOUBLE_EQ(rhs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rhs.max(), 3.0);

  RunningStat e1, e2;
  e1.merge(e2);
  EXPECT_EQ(e1.count(), 0u);
}

TEST(Log2Histogram, MergeAddsBuckets) {
  Log2Histogram a, b, all;
  for (std::uint64_t v : {0ull, 1ull, 5ull, 100ull}) {
    a.add(v);
    all.add(v);
  }
  for (std::uint64_t v : {3ull, 100000ull}) {
    b.add(v);
    all.add(v);
  }
  a.merge(b);  // b reaches higher buckets than a: forces a resize
  EXPECT_EQ(a.total(), all.total());
  EXPECT_EQ(a.buckets(), all.buckets());

  Log2Histogram empty;
  all.merge(empty);
  EXPECT_EQ(all.total(), 6u);
  empty.merge(all);
  EXPECT_EQ(empty.buckets(), all.buckets());
}

TEST(Log2Histogram, BucketPlacement) {
  Log2Histogram h;
  h.add(0);   // bucket 0
  h.add(1);   // bucket 0
  h.add(2);   // bucket 1
  h.add(3);   // bucket 1
  h.add(4);   // bucket 2
  h.add(7);   // bucket 2
  h.add(8);   // bucket 3
  ASSERT_GE(h.buckets().size(), 4u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 2u);
  EXPECT_EQ(h.buckets()[2], 2u);
  EXPECT_EQ(h.buckets()[3], 1u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(Log2Histogram, FractionBelow) {
  Log2Histogram h;
  for (int i = 0; i < 10; ++i) h.add(1);    // bucket 0, values < 2
  for (int i = 0; i < 10; ++i) h.add(100);  // bucket 6, [64,128)
  EXPECT_DOUBLE_EQ(h.fraction_below(2), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction_below(64), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction_below(128), 1.0);
  EXPECT_DOUBLE_EQ(h.fraction_below(1u << 20), 1.0);
  EXPECT_EQ(h.fraction_below(0), 0.0);
}

TEST(Log2Histogram, QuantileUpperBound) {
  Log2Histogram h;
  for (int i = 0; i < 99; ++i) h.add(3);
  h.add(1000);
  // Median lands in the [2,4) bucket whose upper bound is 3.
  EXPECT_EQ(h.quantile_upper_bound(0.5), 3u);
  // The extreme tail reaches the bucket containing 1000 ([512,1024)) but the
  // bound clamps to the largest sample actually recorded, not 1023.
  EXPECT_EQ(h.quantile_upper_bound(1.0), 1000u);
  EXPECT_EQ(h.max_value(), 1000u);
}

TEST(Log2Histogram, QuantileBoundariesClampToObservedSamples) {
  // Single sample: every quantile names that sample, not a bucket sentinel.
  Log2Histogram single;
  single.add(1000);
  EXPECT_EQ(single.quantile_upper_bound(0.0), 1000u);
  EXPECT_EQ(single.quantile_upper_bound(0.5), 1000u);
  EXPECT_EQ(single.quantile_upper_bound(1.0), 1000u);

  // q=0 resolves to the first occupied bucket (clamped), never bucket 0's
  // bound when bucket 0 is empty.
  Log2Histogram h;
  h.add(5);
  h.add(1000);
  EXPECT_EQ(h.quantile_upper_bound(0.0), 5u);
  EXPECT_EQ(h.quantile_upper_bound(1.0), 1000u);
}

TEST(Log2Histogram, MergeCarriesMaxForQuantileClamp) {
  Log2Histogram a, b;
  for (int i = 0; i < 10; ++i) a.add(3);
  b.add(700);
  a.merge(b);
  EXPECT_EQ(a.max_value(), 700u);
  EXPECT_EQ(a.quantile_upper_bound(1.0), 700u);

  // Merge direction must not matter, and merging an empty histogram must
  // not disturb the tracked max.
  Log2Histogram c, empty;
  c.add(700);
  for (int i = 0; i < 10; ++i) c.add(3);
  c.merge(empty);
  EXPECT_EQ(c.quantile_upper_bound(1.0), a.quantile_upper_bound(1.0));
}

TEST(Log2Histogram, EmptyQuantileIsZero) {
  Log2Histogram h;
  EXPECT_EQ(h.quantile_upper_bound(0.5), 0u);
  EXPECT_EQ(h.fraction_below(100), 0.0);
}

// --- Merge property suite: the fleet accumulator contract ------------------
// (docs/SWEEP_ENGINE.md: merged statistics must not depend on how samples
// were sharded or in which order shards merged.)

TEST(RunningStat, MergeIsCommutativeAndAssociative) {
  const std::vector<double> samples = property_samples(600);
  RunningStat a, b, c;
  for (std::size_t i = 0; i < samples.size(); ++i)
    (i % 3 == 0 ? a : (i % 3 == 1 ? b : c)).add(samples[i]);

  RunningStat ab = a;
  ab.merge(b);
  RunningStat ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.count(), ba.count());
  EXPECT_NEAR(ab.mean(), ba.mean(), 1e-9 * std::abs(ab.mean()) + 1e-12);
  EXPECT_NEAR(ab.variance(), ba.variance(), 1e-6 * ab.variance() + 1e-9);
  EXPECT_EQ(ab.min(), ba.min());
  EXPECT_EQ(ab.max(), ba.max());

  RunningStat ab_c = ab;
  ab_c.merge(c);
  RunningStat bc = b;
  bc.merge(c);
  RunningStat a_bc = a;
  a_bc.merge(bc);
  EXPECT_EQ(ab_c.count(), a_bc.count());
  EXPECT_NEAR(ab_c.mean(), a_bc.mean(),
              1e-9 * std::abs(ab_c.mean()) + 1e-12);
  EXPECT_NEAR(ab_c.variance(), a_bc.variance(),
              1e-6 * ab_c.variance() + 1e-9);
  EXPECT_EQ(ab_c.min(), a_bc.min());
  EXPECT_EQ(ab_c.max(), a_bc.max());
}

TEST(Log2Histogram, MergeIsCommutativeAndAssociativeExactly) {
  Log2Histogram a, b, c;
  std::uint64_t x = 12345;
  for (int i = 0; i < 500; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    (i % 3 == 0 ? a : (i % 3 == 1 ? b : c)).add(x >> (x % 50));
  }
  Log2Histogram ab = a;
  ab.merge(b);
  Log2Histogram ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.buckets(), ba.buckets());
  EXPECT_EQ(ab.total(), ba.total());

  Log2Histogram ab_c = ab;
  ab_c.merge(c);
  Log2Histogram bc = b;
  bc.merge(c);
  Log2Histogram a_bc = a;
  a_bc.merge(bc);
  EXPECT_EQ(ab_c.buckets(), a_bc.buckets());
  EXPECT_EQ(ab_c.total(), a_bc.total());
  // Integer counts ⇒ identical quantiles however the merge happened.
  for (const double q : {0.1, 0.5, 0.9, 0.99})
    EXPECT_EQ(ab_c.quantile_upper_bound(q), a_bc.quantile_upper_bound(q));
}

TEST(QuantileSketch, EmptyAndSingle) {
  QuantileSketch s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.quantile(0.5), 0.0);
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.min(), 42.0);
  EXPECT_EQ(s.max(), 42.0);
  EXPECT_EQ(s.quantile(0.0), 42.0);
  EXPECT_EQ(s.quantile(0.5), 42.0);
  EXPECT_EQ(s.quantile(1.0), 42.0);
}

TEST(QuantileSketch, NonPositiveValuesLandInZeroBucket) {
  QuantileSketch s;
  s.add(0.0);
  s.add(-3.0);
  s.add(8.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 8.0);
  EXPECT_EQ(s.quantile(0.0), 0.0);
  EXPECT_EQ(s.quantile(1.0), 8.0);
}

TEST(QuantileSketch, BoundaryQuantilesAreExactMinMax) {
  // Two samples one octave apart: midpoint interpolation inside the first
  // sub-bucket would report q=0 above the smallest recorded sample.
  QuantileSketch s;
  s.add(4.0);
  s.add(5.0);
  EXPECT_EQ(s.quantile(0.0), 4.0);
  EXPECT_EQ(s.quantile(1.0), 5.0);

  // Merged shards: the boundaries stay the exact global extrema.
  QuantileSketch a, b;
  a.add(7.0);
  a.add(9.0);
  b.add(2.5);
  b.add(1e6);
  a.merge(b);
  EXPECT_EQ(a.quantile(0.0), 2.5);
  EXPECT_EQ(a.quantile(1.0), 1e6);
}

TEST(QuantileSketch, QuantilesWithinRelativeErrorBound) {
  std::vector<double> samples = property_samples(20'000);
  QuantileSketch s;
  for (double v : samples) s.add(v);
  std::sort(samples.begin(), samples.end());
  for (const double q : {0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    const double exact =
        samples[static_cast<std::size_t>(q * (samples.size() - 1))];
    const double got = s.quantile(q);
    // 128 sub-buckets per octave ⇒ ≤ ~0.8% relative bucket width; allow 2%
    // for rank interpolation at bucket edges.
    EXPECT_NEAR(got, exact, 0.02 * exact + 1e-12) << "q=" << q;
  }
  EXPECT_EQ(s.quantile(0.0), samples.front());
  EXPECT_EQ(s.quantile(1.0), samples.back());
}

TEST(QuantileSketch, MergeIsExactlyCommutativeAndAssociative) {
  const std::vector<double> samples = property_samples(3'000);
  QuantileSketch a, b, c;
  for (std::size_t i = 0; i < samples.size(); ++i)
    (i % 3 == 0 ? a : (i % 3 == 1 ? b : c)).add(samples[i]);

  QuantileSketch ab = a;
  ab.merge(b);
  QuantileSketch ba = b;
  ba.merge(a);
  QuantileSketch ab_c = ab;
  ab_c.merge(c);
  QuantileSketch bc = b;
  bc.merge(c);
  QuantileSketch a_bc = a;
  a_bc.merge(bc);

  EXPECT_EQ(ab.count(), ba.count());
  EXPECT_EQ(ab_c.count(), a_bc.count());
  for (const double q : {0.0, 0.01, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(ab.quantile(q), ba.quantile(q)) << "q=" << q;
    EXPECT_EQ(ab_c.quantile(q), a_bc.quantile(q)) << "q=" << q;
  }
  EXPECT_EQ(ab_c.min(), a_bc.min());
  EXPECT_EQ(ab_c.max(), a_bc.max());
}

TEST(QuantileSketch, MergedQuantilesDeterministicAcrossShardCounts) {
  const std::vector<double> samples = property_samples(10'000);
  QuantileSketch reference;
  for (double v : samples) reference.add(v);

  for (const std::size_t shards : {2u, 3u, 7u, 16u, 64u}) {
    std::vector<QuantileSketch> parts(shards);
    // Contiguous ranges, like the fleet sampler's session shards.
    for (std::size_t s = 0; s < shards; ++s) {
      const std::size_t lo = samples.size() * s / shards;
      const std::size_t hi = samples.size() * (s + 1) / shards;
      for (std::size_t i = lo; i < hi; ++i) parts[s].add(samples[i]);
    }
    QuantileSketch merged;
    for (const QuantileSketch& p : parts) merged.merge(p);
    EXPECT_EQ(merged.count(), reference.count()) << shards << " shards";
    for (const double q : {0.0, 0.05, 0.5, 0.95, 0.99, 1.0}) {
      EXPECT_EQ(merged.quantile(q), reference.quantile(q))
          << shards << " shards, q=" << q;
    }
  }
}

TEST(Cdf, MonotoneAndEndsAtOne) {
  std::vector<double> samples;
  for (int i = 100; i > 0; --i) samples.push_back(static_cast<double>(i));
  const auto cdf = build_cdf(std::move(samples), 10);
  ASSERT_EQ(cdf.size(), 10u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].value, cdf[i].value);
    EXPECT_LT(cdf[i - 1].cum_fraction, cdf[i].cum_fraction);
  }
  EXPECT_DOUBLE_EQ(cdf.back().cum_fraction, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().value, 100.0);
}

TEST(Cdf, FewerSamplesThanPoints) {
  const auto cdf = build_cdf({3.0, 1.0, 2.0}, 10);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[2].value, 3.0);
}

TEST(Cdf, EmptyInput) {
  EXPECT_TRUE(build_cdf({}, 10).empty());
  EXPECT_TRUE(build_cdf({1.0}, 0).empty());
}

TEST(Geomean, KnownValues) {
  EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
  EXPECT_EQ(geomean({}), 0.0);
}

TEST(Format, Percent) {
  EXPECT_EQ(format_percent(0.1234), "12.3%");
  EXPECT_EQ(format_percent(0.1234, 2), "12.34%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

TEST(Format, Bytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2 KB");
  EXPECT_EQ(format_bytes(2ull << 20), "2 MB");
  EXPECT_EQ(format_bytes(1536ull << 10), "1536 KB");
}

}  // namespace
}  // namespace mobcache
