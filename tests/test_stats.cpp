#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mobcache {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStat, KnownSequence) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic sequence: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStat, SingleValueHasZeroVariance) {
  RunningStat s;
  s.add(3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
}

TEST(RunningStat, MergeMatchesSinglePass) {
  // Split one stream across two accumulators; the merge must agree with a
  // single accumulator that saw everything (parallel Welford).
  RunningStat all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double v = 0.37 * i * i - 5.0 * i + 2.25;
    all.add(v);
    (i % 3 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmptySides) {
  RunningStat filled, empty;
  filled.add(1.0);
  filled.add(3.0);

  RunningStat lhs = filled;
  lhs.merge(empty);  // no-op
  EXPECT_EQ(lhs.count(), 2u);
  EXPECT_DOUBLE_EQ(lhs.mean(), 2.0);

  RunningStat rhs;
  rhs.merge(filled);  // adopt wholesale
  EXPECT_EQ(rhs.count(), 2u);
  EXPECT_DOUBLE_EQ(rhs.mean(), 2.0);
  EXPECT_DOUBLE_EQ(rhs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rhs.max(), 3.0);

  RunningStat e1, e2;
  e1.merge(e2);
  EXPECT_EQ(e1.count(), 0u);
}

TEST(Log2Histogram, MergeAddsBuckets) {
  Log2Histogram a, b, all;
  for (std::uint64_t v : {0ull, 1ull, 5ull, 100ull}) {
    a.add(v);
    all.add(v);
  }
  for (std::uint64_t v : {3ull, 100000ull}) {
    b.add(v);
    all.add(v);
  }
  a.merge(b);  // b reaches higher buckets than a: forces a resize
  EXPECT_EQ(a.total(), all.total());
  EXPECT_EQ(a.buckets(), all.buckets());

  Log2Histogram empty;
  all.merge(empty);
  EXPECT_EQ(all.total(), 6u);
  empty.merge(all);
  EXPECT_EQ(empty.buckets(), all.buckets());
}

TEST(Log2Histogram, BucketPlacement) {
  Log2Histogram h;
  h.add(0);   // bucket 0
  h.add(1);   // bucket 0
  h.add(2);   // bucket 1
  h.add(3);   // bucket 1
  h.add(4);   // bucket 2
  h.add(7);   // bucket 2
  h.add(8);   // bucket 3
  ASSERT_GE(h.buckets().size(), 4u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 2u);
  EXPECT_EQ(h.buckets()[2], 2u);
  EXPECT_EQ(h.buckets()[3], 1u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(Log2Histogram, FractionBelow) {
  Log2Histogram h;
  for (int i = 0; i < 10; ++i) h.add(1);    // bucket 0, values < 2
  for (int i = 0; i < 10; ++i) h.add(100);  // bucket 6, [64,128)
  EXPECT_DOUBLE_EQ(h.fraction_below(2), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction_below(64), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction_below(128), 1.0);
  EXPECT_DOUBLE_EQ(h.fraction_below(1u << 20), 1.0);
  EXPECT_EQ(h.fraction_below(0), 0.0);
}

TEST(Log2Histogram, QuantileUpperBound) {
  Log2Histogram h;
  for (int i = 0; i < 99; ++i) h.add(3);
  h.add(1000);
  // Median lands in the [2,4) bucket whose upper bound is 3.
  EXPECT_EQ(h.quantile_upper_bound(0.5), 3u);
  // The extreme tail reaches the bucket containing 1000: [512,1024).
  EXPECT_EQ(h.quantile_upper_bound(1.0), 1023u);
}

TEST(Log2Histogram, EmptyQuantileIsZero) {
  Log2Histogram h;
  EXPECT_EQ(h.quantile_upper_bound(0.5), 0u);
  EXPECT_EQ(h.fraction_below(100), 0.0);
}

TEST(Cdf, MonotoneAndEndsAtOne) {
  std::vector<double> samples;
  for (int i = 100; i > 0; --i) samples.push_back(static_cast<double>(i));
  const auto cdf = build_cdf(std::move(samples), 10);
  ASSERT_EQ(cdf.size(), 10u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].value, cdf[i].value);
    EXPECT_LT(cdf[i - 1].cum_fraction, cdf[i].cum_fraction);
  }
  EXPECT_DOUBLE_EQ(cdf.back().cum_fraction, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().value, 100.0);
}

TEST(Cdf, FewerSamplesThanPoints) {
  const auto cdf = build_cdf({3.0, 1.0, 2.0}, 10);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[2].value, 3.0);
}

TEST(Cdf, EmptyInput) {
  EXPECT_TRUE(build_cdf({}, 10).empty());
  EXPECT_TRUE(build_cdf({1.0}, 0).empty());
}

TEST(Geomean, KnownValues) {
  EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
  EXPECT_EQ(geomean({}), 0.0);
}

TEST(Format, Percent) {
  EXPECT_EQ(format_percent(0.1234), "12.3%");
  EXPECT_EQ(format_percent(0.1234, 2), "12.34%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

TEST(Format, Bytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2 KB");
  EXPECT_EQ(format_bytes(2ull << 20), "2 MB");
  EXPECT_EQ(format_bytes(1536ull << 10), "1536 KB");
}

}  // namespace
}  // namespace mobcache
