#include "exp/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "exp/json_export.hpp"
#include "exp/runner.hpp"

namespace mobcache {
namespace {

TEST(EffectiveJobs, ExplicitRequestWins) {
  setenv("MOBCACHE_JOBS", "3", 1);
  EXPECT_EQ(effective_jobs(7), 7u);
  unsetenv("MOBCACHE_JOBS");
}

TEST(EffectiveJobs, EnvOverrideUsedWhenUnrequested) {
  setenv("MOBCACHE_JOBS", "5", 1);
  EXPECT_EQ(effective_jobs(0), 5u);
  unsetenv("MOBCACHE_JOBS");
}

TEST(EffectiveJobs, NeverZero) {
  setenv("MOBCACHE_JOBS", "0", 1);
  EXPECT_GE(effective_jobs(0), 1u);
  unsetenv("MOBCACHE_JOBS");
  EXPECT_GE(effective_jobs(0), 1u);
}

TEST(SweepPointSeed, DeterministicAndDecorrelated) {
  EXPECT_EQ(sweep_point_seed(42, 0), sweep_point_seed(42, 0));
  // Distinct (base, index) pairs must give distinct streams — a collision
  // here would silently correlate sweep points.
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {1ull, 42ull, 98765ull}) {
    for (std::uint64_t i = 0; i < 100; ++i) {
      seen.insert(sweep_point_seed(base, i));
    }
  }
  EXPECT_EQ(seen.size(), 300u);
}

TEST(SweepPointSeed, DerivedSeedsMatchPointSeeds) {
  const auto seeds = derived_seeds(42, 8);
  ASSERT_EQ(seeds.size(), 8u);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(seeds[i], sweep_point_seed(42, i)) << i;
  }
}

TEST(SweepExecutor, MapReturnsResultsInIndexOrder) {
  SweepExecutor ex(8);
  EXPECT_EQ(ex.jobs(), 8u);
  const auto out = ex.map(1000, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 1000u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i) << i;
}

TEST(SweepExecutor, ForEachVisitsEveryIndexExactlyOnce) {
  SweepExecutor ex(4);
  std::vector<std::atomic<int>> visits(257);
  ex.for_each(visits.size(),
              [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < visits.size(); ++i)
    EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST(SweepExecutor, SerialAndParallelAgree) {
  SweepExecutor serial(1), parallel(8);
  auto fn = [](std::size_t i) {
    // Something order-sensitive if the executor mixed up indices.
    return static_cast<double>(i) * 1.5 + 1.0 / (1.0 + static_cast<double>(i));
  };
  EXPECT_EQ(serial.map(100, fn), parallel.map(100, fn));
}

TEST(SweepExecutor, ZeroAndOnePointSweeps) {
  SweepExecutor ex(8);
  EXPECT_TRUE(ex.map(0, [](std::size_t i) { return i; }).empty());
  const auto one = ex.map(1, [](std::size_t i) { return i + 7; });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 7u);
}

TEST(SweepExecutor, ThrowingPointFailsSweepWithoutDeadlock) {
  SweepExecutor ex(8);
  EXPECT_THROW(ex.for_each(64,
                           [](std::size_t i) {
                             if (i == 13)
                               throw std::runtime_error("point 13 boom");
                           }),
               std::runtime_error);
  // The pool must still be usable afterwards.
  const auto ok = ex.map(16, [](std::size_t i) { return i; });
  EXPECT_EQ(ok.size(), 16u);
}

TEST(SweepExecutor, RethrownExceptionNamesAFailingPoint) {
  // Fail-fast semantics: the sweep cancels on the first observed failure,
  // so with several throwing points any one of them may be the one
  // rethrown — but it must be one of them, lowest-indexed among those that
  // actually ran.
  SweepExecutor ex(8);
  try {
    ex.for_each(200, [](std::size_t i) {
      if (i % 50 == 7) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    const std::set<std::string> throwing = {"7", "57", "107", "157"};
    EXPECT_TRUE(throwing.count(e.what()) == 1)
        << "unexpected exception: " << e.what();
  }
}

TEST(SweepExecutor, LowestIndexWinsWhenAllShardsThrowConcurrently) {
  // Regression for the resume path's exception contract: when several
  // shards fail *concurrently* (not just "one of the failing points"), the
  // rethrown exception must be the lowest-indexed failure observed. One
  // point per worker plus a start barrier forces every index to run and
  // every shard to throw at the same time, so the answer is deterministic:
  // index 0.
  constexpr std::size_t kPoints = 8;
  SweepExecutor ex(kPoints);
  std::atomic<std::size_t> entered{0};
  try {
    ex.for_each(kPoints, [&](std::size_t i) {
      entered.fetch_add(1);
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(30);
      // Bounded spin so a future semantics change degrades this test into
      // a slow failure instead of a hung CI job.
      while (entered.load() < kPoints &&
             std::chrono::steady_clock::now() < deadline)
        std::this_thread::yield();
      throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "0");
  }
}

TEST(SweepExecutor, SoleThrowingPointIsTheOneRethrown) {
  SweepExecutor ex(8);
  try {
    ex.for_each(64, [](std::size_t i) {
      if (i == 13) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "13");
  }
}

TEST(SweepExecutor, KeepGoingCollectsFailuresInIndexOrder) {
  // K injected throwing points out of N: the sweep must finish with N-K
  // values and K failures, each failure slotted at its own index.
  const std::set<std::size_t> bad = {3, 17, 40};
  for (unsigned jobs : {1u, 8u}) {
    SweepExecutor ex(jobs);
    const auto out = ex.map_outcomes(64, [&](std::size_t i) {
      if (bad.count(i)) throw NumericError("boom " + std::to_string(i));
      return i * 2;
    });
    ASSERT_EQ(out.size(), 64u) << "jobs=" << jobs;
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (bad.count(i)) {
        ASSERT_FALSE(out[i].ok()) << i;
        EXPECT_EQ(out[i].failure->index, i);
        EXPECT_EQ(out[i].failure->error_type, "numeric");
        EXPECT_EQ(out[i].failure->message, "boom " + std::to_string(i));
        EXPECT_FALSE(out[i].failure->quarantined);
      } else {
        ASSERT_TRUE(out[i].ok()) << i;
        EXPECT_EQ(*out[i].value, i * 2);
      }
    }
  }
}

TEST(SweepExecutor, KeepGoingStillPropagatesCancellation) {
  // Cancellation is a whole-run event, never a per-point failure: a
  // keep-going sweep must rethrow it instead of recording it.
  SweepExecutor ex(1);  // serial path checks the token before each point
  global_cancel_token().request_cancel();
  EXPECT_THROW(
      ex.map_outcomes(16, [](std::size_t i) { return i; }),
      CancelledError);
  global_cancel_token().reset();
  // After reset the pool runs normally again.
  const auto out = ex.map_outcomes(4, [](std::size_t i) { return i; });
  ASSERT_EQ(out.size(), 4u);
  EXPECT_TRUE(out[3].ok());
}

TEST(SweepExecutor, ParallelSweepDrainsAndThrowsWhenCancelledMidRun) {
  SweepExecutor ex(4);
  std::atomic<std::size_t> ran{0};
  try {
    ex.for_each(256, [&](std::size_t) {
      if (ran.fetch_add(1) == 20) global_cancel_token().request_cancel();
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    });
    FAIL() << "expected CancelledError";
  } catch (const CancelledError&) {
  }
  global_cancel_token().reset();
  // Draining, not aborting: in-flight points complete, later ones are
  // never handed out.
  EXPECT_GE(ran.load(), 21u);
  EXPECT_LT(ran.load(), 256u);
}

TEST(SweepExecutor, FullyDrainedSweepIgnoresLateCancellation) {
  // A cancel request that lands once every point has already *started*
  // skips nothing — the sweep drains to completion and must not be turned
  // into a spurious failure.
  SweepExecutor ex(4);
  std::atomic<std::size_t> started{0};
  const auto out = ex.map(32, [&](std::size_t i) {
    if (started.fetch_add(1) + 1 == 32)
      global_cancel_token().request_cancel();
    return i;
  });
  global_cancel_token().reset();
  EXPECT_EQ(out.size(), 32u);
}

TEST(SweepExecutor, TechnologyOverridePropagatesToWorkers) {
  TechnologyConfig cfg;
  cfg.dram_access_nj *= 3.0;
  ScopedTechnology scope(cfg);
  SweepExecutor ex(8);
  const auto seen = ex.map(
      64, [](std::size_t) { return technology().dram_access_nj; });
  for (double v : seen) EXPECT_DOUBLE_EQ(v, cfg.dram_access_nj);
}

// ---- end-to-end determinism: the property the whole design exists for ----

TEST(ParallelDeterminism, RunSchemesJsonByteIdentical) {
  ExperimentRunner serial({AppId::Launcher, AppId::Email}, 20'000, 1);
  ExperimentRunner parallel({AppId::Launcher, AppId::Email}, 20'000, 1);
  serial.jobs = 1;
  parallel.jobs = 8;
  auto vs = serial.run_schemes(
      {SchemeKind::BaselineSram, SchemeKind::StaticPartMrstt});
  auto vp = parallel.run_schemes(
      {SchemeKind::BaselineSram, SchemeKind::StaticPartMrstt});
  ExperimentRunner::normalize(vs);
  ExperimentRunner::normalize(vp);
  EXPECT_EQ(experiment_to_json("det", vs), experiment_to_json("det", vp));
}

TEST(ParallelDeterminism, FaultSweepAgreesAcrossJobCounts) {
  ExperimentRunner serial({AppId::Browser}, 20'000, 21);
  ExperimentRunner parallel({AppId::Browser}, 20'000, 21);
  serial.jobs = 1;
  parallel.jobs = 8;
  SchemeParams tmpl;
  tmpl.fault.ecc = EccKind::Secded;
  const std::vector<double> rates = {1e-3, 5e-3};
  const auto ps = run_fault_sweep(serial, SchemeKind::StaticPartMrstt, rates,
                                  tmpl);
  const auto pp = run_fault_sweep(parallel, SchemeKind::StaticPartMrstt, rates,
                                  tmpl);
  ASSERT_EQ(ps.size(), pp.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_DOUBLE_EQ(ps[i].norm_cache_energy, pp[i].norm_cache_energy) << i;
    EXPECT_DOUBLE_EQ(ps[i].norm_exec_time, pp[i].norm_exec_time) << i;
    EXPECT_EQ(ps[i].ecc_corrections, pp[i].ecc_corrections) << i;
    EXPECT_EQ(ps[i].fault_losses, pp[i].fault_losses) << i;
  }
}

TEST(ParallelDeterminism, MultiSeedAgreesAcrossJobCounts) {
  const std::vector<AppId> apps = {AppId::Launcher};
  const std::vector<std::uint64_t> seeds = {11, 22, 42};
  const std::vector<SchemeKind> schemes = {SchemeKind::BaselineSram,
                                           SchemeKind::StaticPartMrstt};
  const auto rs = run_multi_seed(apps, 20'000, seeds, schemes, {}, 1);
  const auto rp = run_multi_seed(apps, 20'000, seeds, schemes, {}, 8);
  ASSERT_EQ(rs.size(), rp.size());
  for (std::size_t i = 0; i < rs.size(); ++i) {
    EXPECT_EQ(rs[i].name, rp[i].name);
    EXPECT_DOUBLE_EQ(rs[i].cache_energy.mean, rp[i].cache_energy.mean) << i;
    EXPECT_DOUBLE_EQ(rs[i].cache_energy.stddev, rp[i].cache_energy.stddev)
        << i;
    EXPECT_DOUBLE_EQ(rs[i].exec_time.mean, rp[i].exec_time.mean) << i;
    EXPECT_DOUBLE_EQ(rs[i].miss_rate.max, rp[i].miss_rate.max) << i;
  }
}

}  // namespace
}  // namespace mobcache
