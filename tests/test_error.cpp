#include "common/error.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>

#include "common/cancel.hpp"
#include "common/env.hpp"
#include "core/scheme.hpp"
#include "exp/runner.hpp"
#include "sim/simulator.hpp"
#include "workload/suite.hpp"

namespace mobcache {
namespace {

template <typename E>
std::exception_ptr capture(const E& e) {
  // Templated to preserve the dynamic type — taking const std::exception&
  // here would slice every SimError down to its base.
  return std::make_exception_ptr(e);
}

TEST(SimErrorTaxonomy, KindNamesAreStable) {
  // These strings are persisted in poison records and failure manifests;
  // renaming one silently orphans every stored failure.
  EXPECT_STREQ(to_string(SimErrorKind::Trace), "trace");
  EXPECT_STREQ(to_string(SimErrorKind::Config), "config");
  EXPECT_STREQ(to_string(SimErrorKind::Numeric), "numeric");
  EXPECT_STREQ(to_string(SimErrorKind::Deadline), "deadline");
  EXPECT_STREQ(to_string(SimErrorKind::Cancelled), "cancelled");
  EXPECT_STREQ(to_string(SimErrorKind::Internal), "internal");
}

TEST(SimErrorTaxonomy, WhatRendersKindMessageAndContext) {
  NumericError e("lane is NaN");
  e.with_point(7).with_scheme("dpstt").with_workload("browser");
  const std::string what = e.what();
  EXPECT_EQ(what, "[numeric] lane is NaN (point 7, scheme=dpstt, "
                  "workload=browser)");
  EXPECT_EQ(e.message(), "lane is NaN");
  ASSERT_TRUE(e.point_index().has_value());
  EXPECT_EQ(*e.point_index(), 7u);
}

TEST(SimErrorTaxonomy, WhatWithoutContextIsJustKindAndMessage) {
  TraceError e("cannot read trace");
  EXPECT_STREQ(e.what(), "[trace] cannot read trace");
}

TEST(SimErrorTaxonomy, ExitCodesFollowTheDocumentedTable) {
  EXPECT_EQ(exit_code_for(TraceError("x")), kExitTraceError);
  EXPECT_EQ(exit_code_for(ConfigError("x")), kExitUsage);
  EXPECT_EQ(exit_code_for(EnvError("x")), kExitUsage);
  EXPECT_EQ(exit_code_for(NumericError("x")), kExitNumericError);
  EXPECT_EQ(exit_code_for(DeadlineExceeded("x")), kExitDeadline);
  EXPECT_EQ(exit_code_for(CancelledError("x")), kExitInterrupted);
  EXPECT_EQ(exit_code_for(SimError(SimErrorKind::Internal, "x")),
            kExitInternal);
  EXPECT_EQ(exit_code_for(std::runtime_error("x")), kExitInternal);
}

TEST(SimErrorTaxonomy, ErrorTypeOfClassifiesInFlightExceptions) {
  EXPECT_EQ(error_type_of(capture(NumericError("n"))), "numeric");
  EXPECT_EQ(error_type_of(capture(DeadlineExceeded("d"))), "deadline");
  EXPECT_EQ(error_type_of(capture(std::runtime_error("r"))), "exception");
}

TEST(SimErrorTaxonomy, ErrorMessageOfStripsSimErrorDecoration) {
  NumericError e("bad lane");
  e.with_point(3);
  // The kind and point travel in structured fields (PointFailure, poison
  // records) — the message must not duplicate them.
  EXPECT_EQ(error_message_of(capture(e)), "bad lane");
  EXPECT_EQ(error_message_of(capture(std::runtime_error("plain"))), "plain");
}

TEST(SimErrorTaxonomy, IsCancellationOnlyForCancelledErrors) {
  EXPECT_TRUE(is_cancellation(capture(CancelledError("stop"))));
  EXPECT_FALSE(is_cancellation(capture(DeadlineExceeded("slow"))));
  EXPECT_FALSE(is_cancellation(capture(std::runtime_error("boom"))));
}

TEST(CancelTokenTest, CheckThrowsOnlyAfterRequestAndResetRearms) {
  CancelToken tok;
  EXPECT_NO_THROW(tok.check());
  tok.request_cancel(15);
  EXPECT_TRUE(tok.cancel_requested());
  EXPECT_EQ(tok.signal(), 15);
  EXPECT_THROW(tok.check(), CancelledError);
  tok.reset();
  EXPECT_FALSE(tok.cancel_requested());
  EXPECT_NO_THROW(tok.check());
}

TEST(CancelTokenTest, PreCancelledTokenAbortsSimulateWithContext) {
  const Trace trace = generate_app_trace(AppId::Launcher, 200'000, 42);
  CancelToken tok;
  tok.request_cancel();
  SimOptions opts;
  opts.cancel = &tok;
  try {
    simulate(trace, build_scheme(SchemeKind::BaselineSram), opts);
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    // The polling site attaches the point's identity before rethrowing.
    EXPECT_FALSE(e.workload().empty());
    EXPECT_FALSE(e.scheme().empty());
  }
}

TEST(CancelTokenTest, ImpossibleDeadlineFailsPointAsDeadlineExceeded) {
  // A 200k-record simulation cannot finish within the poll stride fast
  // enough to beat an already-expired deadline: the first boundary check
  // must raise DeadlineExceeded (kind Deadline -> exit code 4), not hang.
  const Trace trace = generate_app_trace(AppId::Launcher, 200'000, 42);
  CancelToken tok;  // never cancelled; isolates the deadline path
  SimOptions opts;
  opts.cancel = &tok;
  opts.point_deadline_ms = 1;
  try {
    simulate(trace, build_scheme(SchemeKind::BaselineSram), opts);
    // Tolerated: a machine fast enough to simulate 200k records in under
    // the deadline simply completes; the throwing path is covered by the
    // pre-cancelled test above.
  } catch (const DeadlineExceeded& e) {
    EXPECT_EQ(exit_code_for(e), kExitDeadline);
    EXPECT_FALSE(e.workload().empty());
  }
}

TEST(ValidateSimResultFinite, AcceptsRealResultsRejectsNaNLanes) {
  const Trace trace = generate_app_trace(AppId::Launcher, 50'000, 42);
  SimResult r = simulate(trace, build_scheme(SchemeKind::BaselineSram));
  EXPECT_NO_THROW(validate_sim_result_finite(r));

  SimResult bad = r;
  bad.l2_energy.refresh_nj = std::nan("");
  try {
    validate_sim_result_finite(bad);
    FAIL() << "expected NumericError";
  } catch (const NumericError& e) {
    EXPECT_EQ(e.scheme(), bad.scheme);
    EXPECT_EQ(e.workload(), bad.workload);
    EXPECT_NE(std::string(e.what()).find("refresh"), std::string::npos);
  }

  SimResult inf = r;
  inf.cpi = std::numeric_limits<double>::infinity();
  EXPECT_THROW(validate_sim_result_finite(inf), NumericError);
}

}  // namespace
}  // namespace mobcache
