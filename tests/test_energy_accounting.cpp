/// \file test_energy_accounting.cpp
/// Reconciliation tests: every nanojoule a design reports must be derivable
/// from its event counters and the technology parameters. These catch
/// double-charging and forgotten events that aggregate "looks reasonable"
/// checks cannot.

#include <gtest/gtest.h>

#include "core/scheme.hpp"
#include "core/shared_l2.hpp"
#include "sim/simulator.hpp"
#include "workload/suite.hpp"

namespace mobcache {
namespace {

TEST(EnergyReconcile, SharedSramLeakageExact) {
  SharedL2Config c;
  c.cache.name = "L2";
  c.cache.size_bytes = 512ull << 10;
  c.cache.assoc = 8;
  SharedL2 l2(c);
  l2.access(0x1000, AccessType::Read, Mode::User, 5);
  l2.finalize(123'456);
  EXPECT_NEAR(l2.energy().leakage_nj, l2.tech().leakage_nj(123'456), 1e-6);
}

TEST(EnergyReconcile, SharedSramDynamicCountsExact) {
  SharedL2Config c;
  c.cache.name = "L2";
  c.cache.size_bytes = 512ull << 10;
  c.cache.assoc = 8;
  SharedL2 l2(c);

  // 3 misses (each: probe read + fill write + 1 DRAM fetch), then 2 clean
  // read hits, one store hit.
  l2.access(0 * kLineSize, AccessType::Read, Mode::User, 1);
  l2.access(1 * kLineSize, AccessType::Read, Mode::User, 2);
  l2.access(2 * kLineSize, AccessType::Read, Mode::User, 3);
  l2.access(0 * kLineSize, AccessType::Read, Mode::User, 4);
  l2.access(1 * kLineSize, AccessType::Read, Mode::User, 5);
  l2.access(2 * kLineSize, AccessType::Write, Mode::User, 6);

  const TechParams& t = l2.tech();
  const EnergyBreakdown& e = l2.energy();
  EXPECT_NEAR(e.read_nj, (3 + 2) * t.read_energy_nj, 1e-9);
  EXPECT_NEAR(e.write_nj, (3 + 1) * t.write_energy_nj, 1e-9);
  EXPECT_NEAR(e.dram_nj, 3 * technology().dram_access_nj, 1e-9);

  // Finalize flushes the one dirty block (the store-hit line).
  l2.finalize(100);
  EXPECT_NEAR(e.dram_nj, 4 * technology().dram_access_nj, 1e-9);
}

TEST(EnergyReconcile, VictimWritebackChargedOnce) {
  // Direct-mapped cache: a dirty victim must add exactly one DRAM transfer.
  SharedL2Config c;
  c.cache.name = "L2";
  c.cache.size_bytes = 64ull << 10;
  c.cache.assoc = 1;
  SharedL2 l2(c);
  const std::uint64_t sets = l2.array().num_sets();

  l2.access(0, AccessType::Write, Mode::User, 1);  // miss: 1 dram (fetch)
  l2.access(sets * kLineSize, AccessType::Read, Mode::User, 2);
  // Second access: fetch (1) + dirty victim writeback (1). Total 3.
  EXPECT_NEAR(l2.energy().dram_nj, 3 * technology().dram_access_nj, 1e-9);
}

TEST(EnergyReconcile, SimulatedRunMatchesCounterDerivation) {
  // Whole-pipeline reconciliation for the SRAM baseline on a real trace.
  // Demand L2 accesses from the hierarchy are always reads (write-allocate
  // fetch); Write-type L2 accesses are exactly the L1 castouts. From the
  // counters: reads = demand accesses (every one probes); the DRAM transfer
  // count is bounded by misses (fetches) plus all dirty-block writebacks.
  const Trace t = generate_app_trace(AppId::AudioPlayer, 120'000, 21);
  auto l2 = build_scheme(SchemeKind::BaselineSram);
  const SimResult r = simulate(t, *l2);

  const TechParams tech = make_sram(2ull << 20);
  const CacheStats& s = r.l2;

  // Every demand access costs exactly one probe read; castouts cost none.
  // reads × E_read <= read_nj <= accesses × E_read (castouts are the gap).
  EXPECT_GE(r.l2_energy.read_nj + 1e-6,
            static_cast<double>(s.total_misses()) * tech.read_energy_nj);
  EXPECT_LE(r.l2_energy.read_nj,
            static_cast<double>(s.total_accesses()) * tech.read_energy_nj +
                1e-6);

  // DRAM transfers: at least one per demand miss-fetch, bounded above by
  // misses + every dirty writeback + the final flush of resident dirty
  // blocks (≤ cache lines).
  const double dram_events = r.l2_energy.dram_nj / technology().dram_access_nj;
  EXPECT_LE(dram_events,
            static_cast<double>(s.total_misses() + s.writebacks +
                                s.expired_dirty + (2ull << 20) / kLineSize) +
                0.5);
  EXPECT_GE(dram_events, 0.5 * static_cast<double>(s.total_misses()));
}

TEST(EnergyReconcile, BreakdownAdditivity) {
  for (SchemeKind k : headline_schemes()) {
    const Trace t = generate_app_trace(AppId::Launcher, 60'000, 3);
    const SimResult r = simulate(t, build_scheme(k));
    const EnergyBreakdown& e = r.l2_energy;
    EXPECT_NEAR(e.total_nj(),
                e.leakage_nj + e.read_nj + e.write_nj + e.refresh_nj +
                    e.dram_nj,
                1e-6)
        << scheme_name(k);
    EXPECT_NEAR(e.cache_nj(), e.total_nj() - e.dram_nj, 1e-6)
        << scheme_name(k);
  }
}

TEST(EnergyReconcile, PartitionedLeakageIsSumOfSegments) {
  const Trace t = generate_app_trace(AppId::Email, 60'000, 3);
  StaticPartitionConfig pc;
  pc.user = sram_segment(512ull << 10, 8);
  pc.kernel = sram_segment(256ull << 10, 8);
  StaticPartitionedL2 l2(pc);
  const SimResult r = simulate(t, l2);
  const double expect = make_sram(512ull << 10).leakage_nj(r.cycles) +
                        make_sram(256ull << 10).leakage_nj(r.cycles);
  EXPECT_NEAR(r.l2_energy.leakage_nj, expect, expect * 1e-9);
}

TEST(EnergyReconcile, DynamicLeakageNeverExceedsFullArray) {
  const Trace t = generate_app_trace(AppId::Browser, 100'000, 3);
  const SimResult r = simulate(t, build_scheme(SchemeKind::DynamicStt));
  const double full =
      make_sttram(2ull << 20, RetentionClass::Lo).leakage_nj(r.cycles);
  EXPECT_LE(r.l2_energy.leakage_nj, full * (1 + 1e-9));
  EXPECT_GT(r.l2_energy.leakage_nj, 0.0);
  // And it must equal full leakage × (avg enabled fraction).
  const double frac = r.l2_avg_enabled_bytes / static_cast<double>(2ull << 20);
  EXPECT_NEAR(r.l2_energy.leakage_nj, full * frac, full * 0.02);
}

}  // namespace
}  // namespace mobcache
