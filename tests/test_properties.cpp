/// \file test_properties.cpp
/// Property-based sweeps: randomized streams through every cache
/// configuration, checking structural invariants that must hold for any
/// input (TEST_P over policy × associativity × retention).

#include <gtest/gtest.h>

#include "cache/set_assoc_cache.hpp"
#include "common/rng.hpp"
#include "core/multicore_l2.hpp"
#include "core/scheme.hpp"
#include "sim/simulator.hpp"
#include "workload/suite.hpp"

namespace mobcache {
namespace {

struct CacheProp {
  ReplKind repl;
  std::uint32_t assoc;
  Cycle retention;  // 0 = infinite
};

class CacheInvariants : public ::testing::TestWithParam<CacheProp> {};

TEST_P(CacheInvariants, RandomStreamPreservesInvariants) {
  const CacheProp p = GetParam();
  CacheConfig cfg;
  cfg.name = "prop";
  cfg.assoc = p.assoc;
  cfg.size_bytes = 64ull * p.assoc * 64;  // 64 sets
  cfg.repl = p.repl;
  SetAssocCache c(cfg, /*seed=*/5);
  c.set_retention_period(p.retention);

  Rng rng(p.assoc * 1000 + static_cast<int>(p.repl));
  Cycle now = 0;
  std::uint64_t evictions_seen = 0;
  c.set_eviction_observer([&](const EvictionEvent& e) {
    ++evictions_seen;
    // Lifetime ordering must always hold.
    EXPECT_LE(e.fill_cycle, e.last_access);
    EXPECT_LE(e.last_access, e.evict_cycle);
    EXPECT_GE(e.access_count, 1u);
  });

  for (int i = 0; i < 20'000; ++i) {
    now += rng.below(20) + 1;
    const bool kernel = rng.chance(0.4);
    const Addr line =
        (kernel ? kKernelSpaceBase : 0) + rng.below(512) * kLineSize;
    const auto type =
        rng.chance(0.3) ? AccessType::Write : AccessType::Read;

    // Random (but non-empty) way mask, fixed per mode to emulate
    // partitioned usage.
    const WayMask mask = kernel ? way_range_mask(p.assoc / 2,
                                                 p.assoc - p.assoc / 2)
                                : way_range_mask(0, p.assoc / 2 == 0
                                                        ? 1
                                                        : p.assoc / 2);
    const AccessResult r =
        c.access(line, type, kernel ? Mode::Kernel : Mode::User, now, mask);

    // The touched way must be inside the mask.
    ASSERT_NE((mask >> r.way) & 1, 0u);
    // Hit and fill are mutually exclusive, and a miss always fills.
    ASSERT_NE(r.hit, r.filled);
  }

  // Conservation: accesses = hits + misses; fills == misses.
  const CacheStats& s = c.stats();
  EXPECT_EQ(s.total_hits() + s.total_misses(), s.total_accesses());
  EXPECT_EQ(s.fills, s.total_misses());
  // Every eviction of a valid block was observed.
  EXPECT_EQ(evictions_seen, s.evictions + s.expired_blocks);
  // Occupancy can never exceed capacity.
  EXPECT_LE(c.occupancy(full_way_mask(p.assoc), now), cfg.num_lines());
}

std::vector<CacheProp> cache_props() {
  std::vector<CacheProp> v;
  for (ReplKind r : {ReplKind::Lru, ReplKind::Fifo, ReplKind::Random,
                     ReplKind::Plru, ReplKind::Srrip}) {
    for (std::uint32_t a : {2u, 4u, 8u, 16u}) {
      for (Cycle ret : {Cycle{0}, Cycle{5'000}}) {
        v.push_back({r, a, ret});
      }
    }
  }
  return v;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CacheInvariants,
                         ::testing::ValuesIn(cache_props()),
                         [](const auto& info) {
                           const CacheProp& p = info.param;
                           std::string n{to_string(p.repl)};
                           n += "_a" + std::to_string(p.assoc);
                           n += p.retention ? "_ret" : "_noret";
                           return n;
                         });

/// Every headline scheme must uphold simulator-level invariants on every
/// app — miss rates in [0,1], non-negative energy, CPI ≥ base, hit+miss
/// conservation at both levels.
struct SimProp {
  SchemeKind scheme;
  AppId app;
};

class SimInvariants : public ::testing::TestWithParam<SimProp> {};

TEST_P(SimInvariants, EndToEndConservation) {
  const SimProp p = GetParam();
  const Trace t = generate_app_trace(p.app, 60'000, 9);
  const SimResult r = simulate(t, build_scheme(p.scheme));

  EXPECT_EQ(r.records, t.size());
  EXPECT_GE(r.cycles, 2 * r.records);

  for (const CacheStats* s : {&r.l1i, &r.l1d, &r.l2}) {
    EXPECT_EQ(s->total_hits() + s->total_misses(), s->total_accesses());
    EXPECT_GE(s->miss_rate(), 0.0);
    EXPECT_LE(s->miss_rate(), 1.0);
  }
  // L1 accesses account for the whole trace.
  EXPECT_EQ(r.l1i.total_accesses() + r.l1d.total_accesses(), t.size());
  // L2 sees at least the L1 misses (plus castouts).
  EXPECT_GE(r.l2.total_accesses(),
            r.l1i.total_misses() + r.l1d.total_misses());

  EXPECT_GE(r.l2_energy.total_nj(), 0.0);
  EXPECT_GT(r.l1_energy_nj, 0.0);
  EXPECT_LE(r.l2_avg_enabled_bytes,
            static_cast<double>(r.l2_capacity_bytes) + 0.5);
}

std::vector<SimProp> sim_props() {
  std::vector<SimProp> v;
  for (SchemeKind s : headline_schemes()) {
    for (AppId a : {AppId::Launcher, AppId::Maps, AppId::ComputeMatmul}) {
      v.push_back({s, a});
    }
  }
  return v;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimInvariants, ::testing::ValuesIn(sim_props()),
                         [](const auto& info) {
                           std::string n = scheme_name(info.param.scheme);
                           for (char& ch : n)
                             if (ch == '-') ch = '_';
                           return n + "_" + app_name(info.param.app);
                         });

/// Determinism across the whole stack: identical seeds ⇒ identical cycles
/// and energy for every scheme.
class DeterminismProp : public ::testing::TestWithParam<SchemeKind> {};

TEST_P(DeterminismProp, RepeatRunsAreBitIdentical) {
  const Trace t = generate_app_trace(AppId::Email, 50'000, 4);
  const SimResult a = simulate(t, build_scheme(GetParam()));
  const SimResult b = simulate(t, build_scheme(GetParam()));
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_DOUBLE_EQ(a.l2_energy.total_nj(), b.l2_energy.total_nj());
  EXPECT_EQ(a.l2.total_hits(), b.l2.total_hits());
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, DeterminismProp,
                         ::testing::ValuesIn(headline_schemes()),
                         [](const auto& info) {
                           std::string n = scheme_name(info.param);
                           for (char& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

/// Random multicore traffic must never violate group isolation or the way
/// budget, for any core count.
class MulticoreInvariants : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MulticoreInvariants, RandomTrafficKeepsGroupsSound) {
  const std::uint32_t cores = GetParam();
  MulticoreL2Config cfg;
  cfg.cache.name = "L2";
  cfg.cache.size_bytes = 2ull << 20;
  cfg.cache.assoc = 16;
  cfg.cores = cores;
  cfg.epoch_accesses = 3'000;
  MulticoreDynamicL2 l2(cfg);

  Rng rng(cores * 7919);
  Cycle now = 0;
  for (int i = 0; i < 60'000; ++i) {
    now += rng.below(20) + 1;
    const auto core = static_cast<std::uint32_t>(rng.below(cores));
    const bool kernel = rng.chance(0.4);
    const Addr line =
        (kernel ? kKernelSpaceBase : core * (1ull << 44)) +
        rng.below(4096) * kLineSize;
    const auto type = rng.chance(0.3) ? AccessType::Write : AccessType::Read;
    l2.access(line, type, kernel ? Mode::Kernel : Mode::User, core, now);

    if (i % 5'000 == 0) {
      std::uint32_t total = 0;
      for (std::uint32_t g = 0; g < l2.groups(); ++g) {
        ASSERT_GE(l2.group_ways(g), 1u);
        total += l2.group_ways(g);
      }
      ASSERT_LE(total, 16u);
    }
  }
  l2.finalize(now);

  // Stats conservation holds on the shared array.
  const CacheStats s = l2.aggregate_stats();
  EXPECT_EQ(s.total_hits() + s.total_misses(), s.total_accesses());
  EXPECT_LE(l2.avg_enabled_bytes(), 2.0 * 1024 * 1024 + 0.5);
}

INSTANTIATE_TEST_SUITE_P(Cores, MulticoreInvariants,
                         ::testing::Values(1u, 2u, 3u, 4u, 7u));

}  // namespace
}  // namespace mobcache
