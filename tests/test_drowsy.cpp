#include "core/drowsy_l2.hpp"

#include <gtest/gtest.h>

#include "core/scheme.hpp"
#include "sim/simulator.hpp"
#include "workload/suite.hpp"

namespace mobcache {
namespace {

DrowsyL2Config cfg(Cycle window = 1000) {
  DrowsyL2Config c;
  c.cache.name = "L2";
  c.cache.size_bytes = 256ull << 10;
  c.cache.assoc = 8;
  c.window = window;
  return c;
}

TEST(Drowsy, FirstAccessPaysWakeLatency) {
  DrowsyL2 l2(cfg());
  const TechParams sram = make_sram(256ull << 10);
  // Fill, then hit within the same window: the line is already awake.
  l2.access(0x1000, AccessType::Read, Mode::User, 0);
  const L2Result warm = l2.access(0x1000, AccessType::Read, Mode::User, 10);
  EXPECT_EQ(warm.latency, sram.read_latency);

  // After a window boundary everything is drowsy again.
  const L2Result cold = l2.access(0x1000, AccessType::Read, Mode::User, 2000);
  EXPECT_EQ(cold.latency, sram.read_latency + 2);
  EXPECT_EQ(l2.wakeups(), 2u);  // fill wake + re-wake
}

TEST(Drowsy, IdleCacheLeaksAtDrowsyFloor) {
  DrowsyL2 l2(cfg());
  l2.access(0x1000, AccessType::Read, Mode::User, 0);
  // A long idle period: essentially every window has zero awake lines.
  l2.finalize(10'000'000);
  EXPECT_NEAR(l2.avg_leak_fraction(), 0.25, 0.01);
  const TechParams sram = make_sram(256ull << 10);
  EXPECT_NEAR(l2.energy().leakage_nj,
              sram.leakage_nj(10'000'000) * l2.avg_leak_fraction(),
              sram.leakage_nj(10'000'000) * 0.01);
}

TEST(Drowsy, HeavyTrafficRaisesLeakTowardAwake) {
  DrowsyL2 l2(cfg(/*window=*/100'000));
  // Touch many distinct lines continuously within each window.
  Cycle now = 0;
  for (std::uint64_t i = 0; i < 40'000; ++i) {
    l2.access((i % 4096) * kLineSize, AccessType::Read, Mode::User, now);
    now += 10;
  }
  l2.finalize(now);
  EXPECT_GT(l2.avg_leak_fraction(), 0.5);
  EXPECT_LT(l2.avg_leak_fraction(), 1.0);
}

TEST(Drowsy, StatePreservedAcrossWindows) {
  // Unlike retention expiry, drowsy mode keeps data: a hit after many
  // windows is still a hit.
  DrowsyL2 l2(cfg());
  l2.access(0x1000, AccessType::Read, Mode::User, 0);
  const L2Result r = l2.access(0x1000, AccessType::Read, Mode::User, 50'000);
  EXPECT_TRUE(r.hit);
}

TEST(Drowsy, SchemeFactoryIntegration) {
  auto l2 = build_scheme(SchemeKind::DrowsySram);
  ASSERT_NE(l2, nullptr);
  EXPECT_EQ(l2->capacity_bytes(), 2ull << 20);
  EXPECT_NE(l2->describe().find("drowsy"), std::string::npos);
}

TEST(Drowsy, SavesLeakageButLessThanPartitionedStt) {
  const Trace t = generate_app_trace(AppId::Launcher, 300'000, 11);
  const SimResult base = simulate(t, build_scheme(SchemeKind::BaselineSram));
  const SimResult drowsy = simulate(t, build_scheme(SchemeKind::DrowsySram));
  const SimResult mrstt =
      simulate(t, build_scheme(SchemeKind::StaticPartMrstt));

  const double drowsy_ratio =
      drowsy.l2_energy.cache_nj() / base.l2_energy.cache_nj();
  const double mrstt_ratio =
      mrstt.l2_energy.cache_nj() / base.l2_energy.cache_nj();
  // Drowsy must save a lot of leakage...
  EXPECT_LT(drowsy_ratio, 0.7);
  // ...but the paper's design must go further.
  EXPECT_LT(mrstt_ratio, drowsy_ratio);
  // Drowsy keeps the baseline's miss rate (same geometry).
  EXPECT_NEAR(drowsy.l2_miss_rate(), base.l2_miss_rate(), 1e-9);
}

TEST(Drowsy, WakeupsBoundedByAccessesPlusFills) {
  const Trace t = generate_app_trace(AppId::Email, 100'000, 3);
  DrowsyL2Config c = cfg();
  c.cache.size_bytes = 2ull << 20;
  c.cache.assoc = 16;
  DrowsyL2 l2(c);
  const SimResult r = simulate(t, l2);
  EXPECT_GT(l2.wakeups(), 0u);
  EXPECT_LE(l2.wakeups(), r.l2.total_accesses() + r.l2.prefetch_fills +
                              r.l2.fills + r.l2.writebacks + 100);
}

}  // namespace
}  // namespace mobcache
