#include "core/multi_retention_l2.hpp"

#include <gtest/gtest.h>

namespace mobcache {
namespace {

EvictionEvent event(Mode m, Cycle fill, Cycle last, Cycle evict, bool dirty,
                    std::uint32_t touches) {
  EvictionEvent e;
  e.owner = m;
  e.fill_cycle = fill;
  e.last_access = last;
  e.evict_cycle = evict;
  e.dirty = dirty;
  e.access_count = touches;
  return e;
}

TEST(LifetimeRecorder, SplitsByModeAndComputesSpans) {
  LifetimeRecorder rec;
  rec.on_eviction(event(Mode::User, 100, 900, 1000, false, 5));
  rec.on_eviction(event(Mode::Kernel, 100, 150, 200, true, 2));

  EXPECT_EQ(rec.events(Mode::User), 1u);
  EXPECT_EQ(rec.events(Mode::Kernel), 1u);
  // User: residency 900, liveness 800, dead 100 — q=1 bounds clamp to the
  // exact maxima rather than the enclosing power-of-two bucket bounds.
  EXPECT_EQ(rec.residency(Mode::User).quantile_upper_bound(1.0), 900u);
  EXPECT_EQ(rec.liveness(Mode::User).quantile_upper_bound(1.0), 800u);
  EXPECT_EQ(rec.dead_time(Mode::User).quantile_upper_bound(1.0), 100u);
  EXPECT_DOUBLE_EQ(rec.reuse(Mode::User).mean(), 5.0);
  EXPECT_DOUBLE_EQ(rec.reuse(Mode::Kernel).mean(), 2.0);
}

TEST(LifetimeRecorder, ObserverAdapterWorks) {
  LifetimeRecorder rec;
  auto obs = rec.observer();
  obs(event(Mode::Kernel, 0, 10, 20, false, 1));
  EXPECT_EQ(rec.events(Mode::Kernel), 1u);
}

TEST(LifetimeRecorder, HandlesDegenerateTimestamps) {
  LifetimeRecorder rec;
  // evict < fill (should clamp, not underflow)
  rec.on_eviction(event(Mode::User, 100, 50, 60, false, 1));
  EXPECT_EQ(rec.events(Mode::User), 1u);
  EXPECT_LE(rec.residency(Mode::User).quantile_upper_bound(1.0), 1u);
}

TEST(RetentionAdvisor, ShortLivedBlocksGetLowRetention) {
  Log2Histogram liveness;
  // Everything lives ~1 ms ≪ 10 ms LO retention.
  for (int i = 0; i < 1000; ++i) liveness.add(1'000'000);
  EXPECT_EQ(RetentionAdvisor::recommend(liveness), RetentionClass::Lo);
}

TEST(RetentionAdvisor, MediumLivedBlocksGetMidRetention) {
  Log2Histogram liveness;
  // ~100 ms lifetimes: LO (10 ms) insufficient, MID (1 s) covers.
  for (int i = 0; i < 1000; ++i) liveness.add(100'000'000);
  EXPECT_EQ(RetentionAdvisor::recommend(liveness), RetentionClass::Mid);
}

TEST(RetentionAdvisor, LongLivedBlocksGetHighRetention) {
  Log2Histogram liveness;
  for (int i = 0; i < 1000; ++i) liveness.add(10'000'000'000ull);  // 10 s
  EXPECT_EQ(RetentionAdvisor::recommend(liveness), RetentionClass::Hi);
}

TEST(RetentionAdvisor, CoverageKnobMatters) {
  Log2Histogram liveness;
  // 90% die young, 10% live ~100 ms.
  for (int i = 0; i < 900; ++i) liveness.add(1'000'000);
  for (int i = 0; i < 100; ++i) liveness.add(100'000'000);
  EXPECT_EQ(RetentionAdvisor::recommend(liveness, 0.85), RetentionClass::Lo);
  EXPECT_EQ(RetentionAdvisor::recommend(liveness, 0.99), RetentionClass::Mid);
}

TEST(RetentionAdvisor, EmptyHistogramFallsBackToHi) {
  Log2Histogram empty;
  EXPECT_EQ(RetentionAdvisor::recommend(empty), RetentionClass::Hi);
}

TEST(MrsttConfig, BuilderWiresClassesAndPolicy) {
  const StaticPartitionConfig c =
      make_mrstt_config(512ull << 10, 8, RetentionClass::Mid, 128ull << 10, 8,
                        RetentionClass::Lo, RefreshPolicy::ScrubAll);
  EXPECT_EQ(c.user.tech, TechKind::SttRam);
  EXPECT_EQ(c.user.retention, RetentionClass::Mid);
  EXPECT_EQ(c.user.size_bytes, 512ull << 10);
  EXPECT_EQ(c.kernel.retention, RetentionClass::Lo);
  EXPECT_EQ(c.kernel.refresh, RefreshPolicy::ScrubAll);
}

TEST(MultiRetention, EndToEndKernelBlocksDieYoungerThanUser) {
  // The paper's Figure-4 claim, in miniature: run a partitioned cache on a
  // synthetic stream where kernel lines churn and user lines persist, and
  // check the recorder sees the asymmetry that justifies (LO, MID).
  StaticPartitionConfig c;
  c.user = sram_segment(64ull << 10, 8);
  c.kernel = sram_segment(64ull << 10, 8);
  StaticPartitionedL2 l2(c);
  LifetimeRecorder rec;
  l2.set_eviction_observer(rec.observer());

  Cycle now = 0;
  for (std::uint64_t round = 0; round < 50; ++round) {
    // User: loop over a small set repeatedly (long residency).
    for (std::uint64_t i = 0; i < 64; ++i) {
      l2.access(i * kLineSize, AccessType::Read, Mode::User, now);
      now += 30;
    }
    // Kernel: stream new lines every round (short residency, heavy churn).
    for (std::uint64_t i = 0; i < 2048; ++i) {
      l2.access(kKernelSpaceBase + (round * 2048 + i) * kLineSize,
                AccessType::Read, Mode::Kernel, now);
      now += 3;
    }
  }
  ASSERT_GT(rec.events(Mode::Kernel), 1000u);
  const auto kernel_median =
      rec.residency(Mode::Kernel).quantile_upper_bound(0.5);
  // User blocks essentially never evict (they fit), kernel blocks churn.
  EXPECT_EQ(rec.events(Mode::User), 0u);
  EXPECT_LT(kernel_median, static_cast<std::uint64_t>(now));
}

}  // namespace
}  // namespace mobcache
