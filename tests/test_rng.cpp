#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>

namespace mobcache {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeIsInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.range(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(Rng, ChanceFrequencyTracksP) {
  Rng rng(19);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, GeometricAtLeastOneAndMeanMatches) {
  Rng rng(23);
  const double p = 0.01;
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t v = rng.geometric(p);
    ASSERT_GE(v, 1u);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / n, 1.0 / p, 0.05 / p);
}

TEST(Rng, ExponentialMean) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(42.0);
  EXPECT_NEAR(sum / n, 42.0, 2.0);
}

TEST(Rng, WeightedrespectsWeights) {
  Rng rng(31);
  std::array<int, 3> counts{};
  for (int i = 0; i < 30000; ++i) ++counts[rng.weighted({1.0, 2.0, 7.0})];
  EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 30000.0, 0.2, 0.02);
  EXPECT_NEAR(counts[2] / 30000.0, 0.7, 0.02);
}

TEST(Rng, WeightedZeroWeightNeverPicked) {
  Rng rng(37);
  for (int i = 0; i < 2000; ++i) EXPECT_NE(rng.weighted({1.0, 0.0, 1.0}), 1u);
}

class ZipfTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfTest, FirstItemMostPopularAndAllInRange) {
  const double alpha = GetParam();
  ZipfSampler z(64, alpha);
  Rng rng(41);
  std::array<int, 64> counts{};
  for (int i = 0; i < 60000; ++i) {
    const std::size_t s = z.sample(rng);
    ASSERT_LT(s, 64u);
    ++counts[s];
  }
  // Item 0 must dominate every distant item under any positive skew.
  EXPECT_GT(counts[0], counts[32]);
  EXPECT_GT(counts[0], counts[63]);
  // Overall counts must be monotone-ish: head quarter beats tail quarter.
  int head = 0;
  int tail = 0;
  for (int i = 0; i < 16; ++i) head += counts[i];
  for (int i = 48; i < 64; ++i) tail += counts[i];
  EXPECT_GT(head, tail);
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfTest,
                         ::testing::Values(0.5, 0.8, 1.0, 1.2, 2.0));

TEST(Zipf, SingleItem) {
  ZipfSampler z(1, 1.0);
  Rng rng(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.sample(rng), 0u);
}

TEST(Zipf, ZeroSizeDegradesToSingleton) {
  ZipfSampler z(0, 1.0);
  Rng rng(47);
  EXPECT_EQ(z.size(), 1u);
  EXPECT_EQ(z.sample(rng), 0u);
}

}  // namespace
}  // namespace mobcache
