// Fleet sampler (E22) contract: session sampling is a pure function of the
// seed, and the merged fleet statistics are identical for every --jobs value
// (fixed shard layout + ordered merge) with exactly deterministic quantiles
// across shard counts (integer-count sketch).

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "exp/fleet.hpp"

namespace mobcache {
namespace {

FleetConfig small_fleet(unsigned jobs) {
  FleetConfig cfg;
  cfg.mix = PopulationModel::default_mix(/*mean_session_accesses=*/18'000);
  cfg.sessions = 16;
  cfg.seed = 42;
  cfg.scheme = SchemeKind::DynamicStt;
  cfg.jobs = jobs;
  return cfg;
}

TEST(Fleet, SampleSessionIsDeterministic) {
  const PopulationModel mix = PopulationModel::default_mix(50'000);
  const ScenarioConfig a = sample_session(mix, 123);
  const ScenarioConfig b = sample_session(mix, 123);
  EXPECT_EQ(a.apps, b.apps);
  EXPECT_EQ(a.total_accesses, b.total_accesses);
  EXPECT_EQ(a.slice_mean, b.slice_mean);
  EXPECT_EQ(a.seed, 123u);
}

TEST(Fleet, SampleSessionCoversMixAndKeepsAppsDistinct) {
  const PopulationModel mix = PopulationModel::default_mix(50'000);
  std::set<std::uint64_t> session_lengths;
  for (std::uint64_t s = 0; s < 200; ++s) {
    const ScenarioConfig sc = sample_session(mix, sweep_point_seed(9, s));
    ASSERT_GE(sc.apps.size(), mix.min_apps);
    ASSERT_LE(sc.apps.size(), mix.max_apps);
    const std::set<AppId> distinct(sc.apps.begin(), sc.apps.end());
    EXPECT_EQ(distinct.size(), sc.apps.size()) << "seed " << s;
    session_lengths.insert(sc.total_accesses);
  }
  // All three device tiers (0.5x / 1x / 2x mean) appear across 200 draws.
  EXPECT_EQ(session_lengths.size(), 3u);
}

TEST(Fleet, DefaultShardCountIsAPureFunctionOfSessions) {
  EXPECT_EQ(fleet_shard_count(0), 0u);
  EXPECT_EQ(fleet_shard_count(10), 10u);
  EXPECT_EQ(fleet_shard_count(64), 64u);
  EXPECT_EQ(fleet_shard_count(1'000'000), 64u);
}

TEST(Fleet, ResultsAreBitIdenticalAcrossJobs) {
  const FleetResult serial = run_fleet(small_fleet(1));
  const FleetResult parallel = run_fleet(small_fleet(4));

  EXPECT_EQ(serial.shards, parallel.shards);
  EXPECT_EQ(serial.acc.sessions, 16u);
  EXPECT_EQ(serial.acc.sessions, parallel.acc.sessions);
  EXPECT_EQ(serial.acc.records, parallel.acc.records);
  // Exact double equality on purpose: same shard layout + same merge order
  // means the float paths see identical operand sequences.
  for (const double q : {0.5, 0.95, 0.99}) {
    EXPECT_EQ(serial.acc.cache_energy_nj.sketch.quantile(q),
              parallel.acc.cache_energy_nj.sketch.quantile(q));
    EXPECT_EQ(serial.acc.cpi.sketch.quantile(q),
              parallel.acc.cpi.sketch.quantile(q));
  }
  EXPECT_EQ(serial.acc.cache_energy_nj.stat.mean(),
            parallel.acc.cache_energy_nj.stat.mean());
  EXPECT_EQ(serial.acc.total_energy_nj.stat.mean(),
            parallel.acc.total_energy_nj.stat.mean());
  EXPECT_EQ(serial.acc.cpi.stat.max(), parallel.acc.cpi.stat.max());
}

TEST(Fleet, SketchQuantilesAreExactAcrossShardCounts) {
  FleetConfig one_shard = small_fleet(2);
  one_shard.shards = 1;
  FleetConfig many_shards = small_fleet(2);
  many_shards.shards = 7;

  const FleetResult a = run_fleet(one_shard);
  const FleetResult b = run_fleet(many_shards);
  EXPECT_EQ(a.acc.sessions, b.acc.sessions);
  EXPECT_EQ(a.acc.records, b.acc.records);
  // Quantiles come from integer counts: exact under any sharding. (The
  // Welford mean may differ in the last bit across shard counts — that is
  // why the BENCH results report sketch quantiles, not merged means.)
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(a.acc.cache_energy_nj.sketch.quantile(q),
              b.acc.cache_energy_nj.sketch.quantile(q));
    EXPECT_EQ(a.acc.total_energy_nj.sketch.quantile(q),
              b.acc.total_energy_nj.sketch.quantile(q));
    EXPECT_EQ(a.acc.cpi.sketch.quantile(q), b.acc.cpi.sketch.quantile(q));
  }
  EXPECT_EQ(a.acc.cpi.sketch.min(), b.acc.cpi.sketch.min());
  EXPECT_EQ(a.acc.cpi.sketch.max(), b.acc.cpi.sketch.max());
}

TEST(Fleet, CountersTrackSessions) {
  reset_fleet_counters();
  const FleetResult r = run_fleet(small_fleet(2));
  const FleetCounters c = fleet_counters();
  EXPECT_EQ(c.sessions_simulated, r.acc.sessions);
  EXPECT_EQ(c.session_records, r.acc.records);
  EXPECT_EQ(c.shard_merges, r.shards);
  reset_fleet_counters();
  EXPECT_EQ(fleet_counters().sessions_simulated, 0u);
}

TEST(Fleet, EmptyFleetIsEmpty) {
  FleetConfig cfg = small_fleet(1);
  cfg.sessions = 0;
  const FleetResult r = run_fleet(cfg);
  EXPECT_EQ(r.acc.sessions, 0u);
  EXPECT_EQ(r.shards, 0u);
  EXPECT_EQ(r.acc.cpi.sketch.quantile(0.5), 0.0);
}

}  // namespace
}  // namespace mobcache
