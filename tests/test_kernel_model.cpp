#include "workload/kernel_model.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace mobcache {
namespace {

std::vector<KernelService> all_services() {
  std::vector<KernelService> v;
  for (int i = 0; i < kKernelServiceCount; ++i)
    v.push_back(static_cast<KernelService>(i));
  return v;
}

TEST(KernelModel, EpisodesAreKernelModeAndKernelAddressed) {
  KernelModel km(1);
  Rng rng(2);
  Trace t;
  for (KernelService s : all_services()) km.emit_episode(s, 0, t, rng);
  ASSERT_GT(t.size(), 0u);
  for (const Access& a : t.accesses()) {
    EXPECT_EQ(a.mode, Mode::Kernel);
    EXPECT_TRUE(is_kernel_addr(a.addr));
  }
  EXPECT_TRUE(t.modes_consistent_with_addresses());
}

TEST(KernelModel, EpisodeLengthNearDocumentedMean) {
  KernelModel km(1);
  Rng rng(3);
  for (KernelService s : all_services()) {
    Trace t;
    const int reps = 50;
    for (int i = 0; i < reps; ++i) km.emit_episode(s, 0, t, rng);
    const double mean = static_cast<double>(t.size()) / reps;
    const double expect = KernelModel::mean_episode_accesses(s);
    EXPECT_NEAR(mean, expect, expect * 0.35)
        << "episode " << to_string(s) << " length off its documented mean";
  }
}

TEST(KernelModel, FileReadTouchesPageCache) {
  KernelModel km(1);
  Rng rng(5);
  Trace t;
  km.emit_episode(KernelService::FileRead, 0, t, rng);
  const KernelLayout& lay = km.layout();
  bool touched_pc = false;
  for (const Access& a : t.accesses()) {
    if (!a.is_ifetch() && a.addr >= lay.page_cache_base &&
        a.addr < lay.page_cache_base + lay.page_cache_bytes) {
      touched_pc = true;
      EXPECT_EQ(a.type, AccessType::Read);
    }
  }
  EXPECT_TRUE(touched_pc);
}

TEST(KernelModel, PageFaultZeroesWholePage) {
  KernelModel km(1);
  Rng rng(7);
  Trace t;
  km.emit_episode(KernelService::PageFault, 0, t, rng);
  // 64 consecutive line writes = one 4 KB page zeroed.
  int consecutive_writes = 0;
  int max_run = 0;
  for (const Access& a : t.accesses()) {
    if (a.is_write() && !a.is_ifetch()) {
      ++consecutive_writes;
      max_run = std::max(max_run, consecutive_writes);
    } else {
      consecutive_writes = 0;
    }
  }
  EXPECT_GE(max_run, 64);
}

TEST(KernelModel, SchedTickIsShortestService) {
  for (KernelService s : all_services()) {
    if (s == KernelService::SchedTick || s == KernelService::InputEvent)
      continue;
    EXPECT_LT(KernelModel::mean_episode_accesses(KernelService::InputEvent),
              KernelModel::mean_episode_accesses(s));
  }
}

TEST(KernelModel, TextWalkSpansManyDistinctLines) {
  // The L1I-hostility premise: one episode touches far more distinct text
  // lines than a hot loop would.
  KernelModel km(1);
  Rng rng(11);
  Trace t;
  km.emit_episode(KernelService::BinderIpc, 0, t, rng);
  std::unordered_set<Addr> text_lines;
  for (const Access& a : t.accesses()) {
    if (a.is_ifetch()) text_lines.insert(line_addr(a.addr));
  }
  EXPECT_GT(text_lines.size(), 40u);
}

TEST(KernelModel, StreamingServicesAdvanceCursor) {
  // Two FileRead episodes must touch mostly different page-cache lines
  // (streaming), unlike the slab structures which repeat.
  KernelModel km(1);
  Rng rng(13);
  Trace t1;
  km.emit_episode(KernelService::FileRead, 0, t1, rng);
  Trace t2;
  km.emit_episode(KernelService::FileRead, 0, t2, rng);

  const KernelLayout& lay = km.layout();
  auto pc_lines = [&](const Trace& t) {
    std::unordered_set<Addr> s;
    for (const Access& a : t.accesses()) {
      if (!a.is_ifetch() && a.addr >= lay.page_cache_base &&
          a.addr < lay.page_cache_base + lay.page_cache_bytes)
        s.insert(line_addr(a.addr));
    }
    return s;
  };
  const auto l1 = pc_lines(t1);
  const auto l2 = pc_lines(t2);
  std::size_t overlap = 0;
  for (Addr a : l1) overlap += l2.count(a);
  EXPECT_EQ(overlap, 0u) << "page-cache streaming must not rewind";
}

TEST(KernelModel, ThreadIdPropagated) {
  KernelModel km(1);
  Rng rng(17);
  Trace t;
  km.emit_episode(KernelService::NetRx, 7, t, rng);
  for (const Access& a : t.accesses()) EXPECT_EQ(a.thread, 7);
}

TEST(KernelModel, DeterministicGivenSameRngSeed) {
  KernelModel km1(1);
  KernelModel km2(1);
  Rng r1(42);
  Rng r2(42);
  Trace t1;
  Trace t2;
  km1.emit_episode(KernelService::FrameFlip, 0, t1, r1);
  km2.emit_episode(KernelService::FrameFlip, 0, t2, r2);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].addr, t2[i].addr);
    EXPECT_EQ(t1[i].type, t2[i].type);
  }
}

}  // namespace
}  // namespace mobcache
