#include <gtest/gtest.h>

#include <cmath>

#include "core/scheme.hpp"
#include "energy/technology.hpp"
#include "sim/simulator.hpp"
#include "workload/suite.hpp"

namespace mobcache {
namespace {

TEST(Temperature, NominalReproducesDocumentedRetention) {
  EXPECT_EQ(retention_cycles_of(RetentionClass::Lo),
            tech_constants::kRetentionLoCycles);
  EXPECT_EQ(retention_cycles_of(RetentionClass::Mid),
            tech_constants::kRetentionMidCycles);
  EXPECT_EQ(retention_cycles_of(RetentionClass::Hi), 0u);
}

TEST(Temperature, DeltaScalesInverselyWithT) {
  TechnologyConfig cfg;
  cfg.temperature_k = 2 * kNominalTempK;
  ScopedTechnology scope(cfg);
  EXPECT_NEAR(delta_at_temperature(RetentionClass::Lo),
              delta_of(RetentionClass::Lo) / 2.0, 1e-9);
}

TEST(Temperature, HotterMeansExponentiallyShorterRetention) {
  const Cycle nominal = retention_cycles_of(RetentionClass::Lo);
  TechnologyConfig hot;
  hot.temperature_k = 358.0;  // 85 C
  ScopedTechnology scope(hot);
  const Cycle at85 = retention_cycles_of(RetentionClass::Lo);
  EXPECT_LT(at85, nominal / 4) << "85 C must cost well over 4x retention";
  EXPECT_GT(at85, nominal / 100) << "but not orders beyond the physics";
  // The analytic prediction: ratio = exp(Δ·(T0/T − 1)).
  const double predicted =
      std::exp(delta_of(RetentionClass::Lo) * (kNominalTempK / 358.0 - 1.0));
  EXPECT_NEAR(static_cast<double>(at85) / static_cast<double>(nominal),
              predicted, predicted * 0.01);
}

TEST(Temperature, ColderLengthensRetention) {
  TechnologyConfig cold;
  cold.temperature_k = 298.0;  // 25 C
  ScopedTechnology scope(cold);
  EXPECT_GT(retention_cycles_of(RetentionClass::Lo),
            tech_constants::kRetentionLoCycles);
}

TEST(Temperature, HiClassStaysEffectivelyNonVolatile) {
  TechnologyConfig hot;
  hot.temperature_k = 358.0;
  ScopedTechnology scope(hot);
  EXPECT_EQ(retention_cycles_of(RetentionClass::Hi), 0u);
}

TEST(Temperature, SttCachesInheritTheActiveRetention) {
  TechnologyConfig hot;
  hot.temperature_k = 358.0;
  ScopedTechnology scope(hot);
  const TechParams t = make_sttram(1ull << 20, RetentionClass::Lo);
  EXPECT_EQ(t.retention_cycles, retention_cycles_of(RetentionClass::Lo));
  EXPECT_LT(t.retention_cycles, tech_constants::kRetentionLoCycles / 4);
}

TEST(Temperature, DesignStillSavesEnergyWhenHot) {
  // The headline claim must survive the hot corner (graceful degradation).
  const Trace t = generate_app_trace(AppId::Email, 200'000, 5);
  TechnologyConfig hot;
  hot.temperature_k = 358.0;
  ScopedTechnology scope(hot);
  const SimResult base = simulate(t, build_scheme(SchemeKind::BaselineSram));
  const SimResult mrstt =
      simulate(t, build_scheme(SchemeKind::StaticPartMrstt));
  EXPECT_LT(mrstt.l2_energy.cache_nj(), 0.4 * base.l2_energy.cache_nj());
}

}  // namespace
}  // namespace mobcache
