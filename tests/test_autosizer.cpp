#include "core/partition_autosizer.hpp"

#include <gtest/gtest.h>

#include "workload/suite.hpp"

namespace mobcache {
namespace {

TEST(Autosizer, CandidateGridIsLegal) {
  for (const PartitionCandidate& c : PartitionAutosizer::candidates()) {
    CacheConfig u;
    u.size_bytes = c.user_bytes;
    u.assoc = c.user_assoc;
    EXPECT_NO_THROW(u.validate()) << c.user_bytes << "/" << c.user_assoc;
    CacheConfig k;
    k.size_bytes = c.kernel_bytes;
    k.assoc = c.kernel_assoc;
    EXPECT_NO_THROW(k.validate()) << c.kernel_bytes << "/" << c.kernel_assoc;
    EXPECT_LT(c.total_bytes(), 2ull << 21);
  }
  EXPECT_GE(PartitionAutosizer::candidates().size(), 20u);
}

class AutosizerFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    traces_ = new std::vector<Trace>;
    traces_->push_back(generate_app_trace(AppId::Launcher, 250'000, 17));
    traces_->push_back(generate_app_trace(AppId::AudioPlayer, 250'000, 17));
  }
  static void TearDownTestSuite() {
    delete traces_;
    traces_ = nullptr;
  }
  static std::vector<Trace>* traces_;
};

std::vector<Trace>* AutosizerFixture::traces_ = nullptr;

TEST_F(AutosizerFixture, ScoresEveryCandidateNormalized) {
  AutosizerConfig cfg;
  PartitionAutosizer az(cfg);
  // Use a reduced grid for speed.
  std::vector<PartitionCandidate> grid = {
      {256ull << 10, 8, 128ull << 10, 8},
      {1024ull << 10, 8, 512ull << 10, 8},
  };
  const auto scores = az.score_all(*traces_, grid);
  ASSERT_EQ(scores.size(), 2u);
  for (const CandidateScore& s : scores) {
    EXPECT_GT(s.norm_cache_energy, 0.0);
    EXPECT_LT(s.norm_cache_energy, 1.0);  // smaller SRAM leaks less
    EXPECT_GT(s.norm_exec_time, 0.5);
    EXPECT_GT(s.avg_miss_rate, 0.0);
  }
  // Sorted by total size.
  EXPECT_LT(scores[0].candidate.total_bytes(),
            scores[1].candidate.total_bytes());
  // Bigger partition must not be slower than the far smaller one here.
  EXPECT_LE(scores[1].norm_exec_time, scores[0].norm_exec_time + 1e-9);
}

TEST_F(AutosizerFixture, BestMeetsTimeBudgetWhenFeasible) {
  AutosizerConfig cfg;
  cfg.max_slowdown = 1.10;
  PartitionAutosizer az(cfg);
  const CandidateScore best = az.best(*traces_);
  EXPECT_TRUE(best.feasible);
  EXPECT_LE(best.norm_exec_time, 1.10);
  EXPECT_LT(best.norm_cache_energy, 1.0);
  EXPECT_LT(best.candidate.total_bytes(), 2ull << 20);
}

TEST_F(AutosizerFixture, TighterBudgetNeverPicksSlowerDesign) {
  AutosizerConfig loose;
  loose.max_slowdown = 1.25;
  AutosizerConfig tight;
  tight.max_slowdown = 1.02;
  const CandidateScore l = PartitionAutosizer(loose).best(*traces_);
  const CandidateScore t = PartitionAutosizer(tight).best(*traces_);
  EXPECT_LE(t.norm_exec_time, l.norm_exec_time + 1e-9);
  // Energy budget trade-off: the tight-budget pick can't save more energy.
  EXPECT_GE(t.norm_cache_energy, l.norm_cache_energy - 1e-9);
}

TEST_F(AutosizerFixture, SttTechnologyScoresLower) {
  AutosizerConfig sram;
  AutosizerConfig stt;
  stt.tech = TechKind::SttRam;
  const CandidateScore s = PartitionAutosizer(sram).best(*traces_);
  const CandidateScore m = PartitionAutosizer(stt).best(*traces_);
  EXPECT_LT(m.norm_cache_energy, s.norm_cache_energy);
}

TEST(Autosizer, InfeasibleBudgetFallsBackToLeastBad) {
  std::vector<Trace> traces;
  traces.push_back(generate_app_trace(AppId::Maps, 150'000, 3));
  AutosizerConfig cfg;
  cfg.max_slowdown = 0.5;  // impossible: nothing beats the baseline 2×
  PartitionAutosizer az(cfg);
  const CandidateScore best = az.best(traces);
  EXPECT_FALSE(best.feasible);
  EXPECT_GT(best.norm_exec_time, 0.5);
}

}  // namespace
}  // namespace mobcache
