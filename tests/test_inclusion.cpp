#include <gtest/gtest.h>

#include "core/multi_retention_l2.hpp"
#include "core/scheme.hpp"
#include "core/shared_l2.hpp"
#include "sim/simulator.hpp"
#include "workload/suite.hpp"

namespace mobcache {
namespace {

SharedL2Config tiny_l2() {
  SharedL2Config c;
  c.cache.name = "L2";
  c.cache.size_bytes = 64ull << 10;  // smaller than both L1s combined
  c.cache.assoc = 1;                 // direct-mapped: easy conflict control
  return c;
}

Access read(Addr a) {
  Access x;
  x.addr = a;
  x.type = AccessType::Read;
  x.mode = Mode::User;
  return x;
}

TEST(Inclusion, L2EvictionDropsL1Copy) {
  SharedL2 l2(tiny_l2());
  HierarchyConfig hc;
  hc.inclusive_l2 = true;
  MemoryHierarchy h(hc, l2);

  const std::uint64_t l2_sets = l2.array().num_sets();
  const Addr a = 0;
  const Addr b = l2_sets * kLineSize;  // conflicts with a in the L2 only

  h.access(read(a), 0);
  // a sits in both L1D and L2. Evict it from the L2 via the conflict line.
  h.access(read(b), 100);
  EXPECT_EQ(h.back_invalidations(), 1u);

  // The L1 copy is gone: re-reading `a` must miss L1 (inclusive semantics),
  // visible as a nonzero stall.
  const Cycle stall = h.access(read(a), 200);
  EXPECT_GT(stall, 0u);
}

TEST(Inclusion, NonInclusiveKeepsL1Copy) {
  SharedL2 l2(tiny_l2());
  MemoryHierarchy h({}, l2);  // default: non-inclusive

  const std::uint64_t l2_sets = l2.array().num_sets();
  h.access(read(0), 0);
  h.access(read(l2_sets * kLineSize), 100);
  EXPECT_EQ(h.back_invalidations(), 0u);
  // L1 still holds `a`: free hit.
  EXPECT_EQ(h.access(read(0), 200), 0u);
}

TEST(Inclusion, ObserversMulticast) {
  // The inclusion observer must coexist with a lifetime recorder.
  SharedL2 l2(tiny_l2());
  LifetimeRecorder rec;
  l2.add_eviction_observer(rec.observer());

  HierarchyConfig hc;
  hc.inclusive_l2 = true;
  MemoryHierarchy h(hc, l2);

  const std::uint64_t l2_sets = l2.array().num_sets();
  h.access(read(0), 0);
  h.access(read(l2_sets * kLineSize), 100);
  EXPECT_EQ(h.back_invalidations(), 1u);
  EXPECT_EQ(rec.events(Mode::User), 1u) << "recorder must also see it";
}

TEST(Inclusion, InvalidateLineReportsDirtyState) {
  CacheConfig cfg;
  cfg.size_bytes = 16ull << 10;
  cfg.assoc = 4;
  SetAssocCache c(cfg);
  c.access(0, AccessType::Write, Mode::User, 1);
  bool dirty = false;
  EXPECT_TRUE(c.invalidate_line(0, &dirty));
  EXPECT_TRUE(dirty);
  EXPECT_FALSE(c.contains(0, 2));
  EXPECT_FALSE(c.invalidate_line(0, &dirty));  // already gone
}

TEST(Inclusion, EndToEndCostIsModest) {
  // Inclusion adds L1 misses but must not change the paper's conclusions:
  // run the MRSTT design both ways on a real app.
  const Trace t = generate_app_trace(AppId::Email, 200'000, 5);

  SimOptions non_inc;
  const SimResult a =
      simulate(t, build_scheme(SchemeKind::StaticPartMrstt), non_inc);

  SimOptions inc;
  inc.hierarchy.inclusive_l2 = true;
  const SimResult b =
      simulate(t, build_scheme(SchemeKind::StaticPartMrstt), inc);

  EXPECT_GE(b.l1d.total_misses() + b.l1i.total_misses(),
            a.l1d.total_misses() + a.l1i.total_misses());
  EXPECT_LT(static_cast<double>(b.cycles),
            static_cast<double>(a.cycles) * 1.10);
}

}  // namespace
}  // namespace mobcache
