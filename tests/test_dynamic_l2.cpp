#include "core/dynamic_partitioned_l2.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace mobcache {
namespace {

DynamicL2Config cfg(TechKind tech = TechKind::Sram) {
  DynamicL2Config c;
  c.cache.name = "L2";
  c.cache.size_bytes = 2ull << 20;
  c.cache.assoc = 16;
  c.tech = tech;
  c.retention = RetentionClass::Lo;
  c.epoch_accesses = 2'000;  // short epochs so tests converge fast
  return c;
}

/// Drives a skewed two-mode stream: user loops over `user_lines` lines,
/// kernel over `kernel_lines`.
void drive(DynamicPartitionedL2& l2, std::uint64_t user_lines,
           std::uint64_t kernel_lines, std::uint64_t accesses, Cycle& now,
           std::uint64_t seed = 1) {
  Rng rng(seed);
  for (std::uint64_t i = 0; i < accesses; ++i) {
    if (i % 2 == 0) {
      l2.access(rng.below(user_lines) * kLineSize, AccessType::Read,
                Mode::User, now);
    } else {
      l2.access(kKernelSpaceBase + rng.below(kernel_lines) * kLineSize,
                AccessType::Read, Mode::Kernel, now);
    }
    now += 10;
  }
}

TEST(DynamicL2, ReconfiguresAndShrinksForSmallWorkingSets) {
  DynamicPartitionedL2 l2(cfg());
  Cycle now = 0;
  // Tiny working sets: ~1 way each suffices.
  drive(l2, 512, 512, 60'000, now);
  l2.finalize(now);

  EXPECT_GT(l2.reconfigurations(), 0u);
  const WayAllocation a = l2.allocation();
  EXPECT_LE(a.total(), 8u) << "small demand must shrink the allocation";
  EXPECT_LT(l2.avg_enabled_bytes(), 2.0 * 1024 * 1024);
}

TEST(DynamicL2, GrowsUserSideForLargeUserDemand) {
  DynamicPartitionedL2 l2(cfg());
  Cycle now = 0;
  // User spans ~1 MB with reuse, kernel tiny.
  drive(l2, 16'384, 256, 120'000, now);
  l2.finalize(now);
  const WayAllocation a = l2.allocation();
  EXPECT_GT(a.user_ways, a.kernel_ways);
}

TEST(DynamicL2, SegmentsNeverOverlapAndStayInBudget) {
  DynamicPartitionedL2 l2(cfg());
  Cycle now = 0;
  drive(l2, 8'192, 4'096, 100'000, now);
  for (const AllocationSample& s : l2.allocation_history()) {
    EXPECT_LE(s.user_ways + s.kernel_ways, 16u);
    EXPECT_GE(s.user_ways, 1u);
    EXPECT_GE(s.kernel_ways, 1u);
  }
}

TEST(DynamicL2, AllocationHistoryCyclesMonotone) {
  DynamicPartitionedL2 l2(cfg());
  Cycle now = 0;
  drive(l2, 512, 65'536, 100'000, now);
  const auto& h = l2.allocation_history();
  for (std::size_t i = 1; i < h.size(); ++i)
    EXPECT_GE(h[i].cycle, h[i - 1].cycle);
}

TEST(DynamicL2, UserBlocksConfinedToUserWays) {
  DynamicPartitionedL2 l2(cfg());
  Cycle now = 0;
  drive(l2, 2'048, 2'048, 60'000, now);
  const WayAllocation a = l2.allocation();
  // After convergence, freshly-filled user blocks live in ways
  // [0, user_ways); kernel blocks in the top kernel_ways. Blocks in
  // transferred ways may linger (lazy handover), so only check fills from
  // the most recent epoch: every *young* block must respect the masks.
  const Cycle recent = now - 2'000 * 10;
  l2.array().for_each_valid_block([&](std::uint32_t, std::uint32_t way,
                                      const BlockMeta& b) {
    if (b.fill_cycle < recent) return;
    if (b.owner == Mode::User) {
      EXPECT_LT(way, a.user_ways);
    } else {
      EXPECT_GE(way, 16u - a.kernel_ways);
    }
  });
}

TEST(DynamicL2, PowerGatedWaysAreEmpty) {
  DynamicPartitionedL2 l2(cfg());
  Cycle now = 0;
  drive(l2, 256, 256, 60'000, now);  // tiny demand → most ways off
  const WayAllocation a = l2.allocation();
  ASSERT_LT(a.total(), 16u);
  std::uint64_t blocks_in_off_ways = 0;
  l2.array().for_each_valid_block([&](std::uint32_t, std::uint32_t way,
                                      const BlockMeta&) {
    if (way >= a.user_ways && way < 16u - a.kernel_ways) ++blocks_in_off_ways;
  });
  EXPECT_EQ(blocks_in_off_ways, 0u);
}

TEST(DynamicL2, ReconfigWritebacksReachDram) {
  DynamicL2Config c = cfg();
  c.controller.max_step = 16;  // let it slam allocations around
  DynamicPartitionedL2 l2(c);
  Cycle now = 0;
  Rng rng(3);
  // Dirty a lot of lines, then shift demand so ways power off.
  for (std::uint64_t i = 0; i < 30'000; ++i) {
    l2.access(rng.below(16'384) * kLineSize, AccessType::Write, Mode::User,
              now);
    now += 10;
  }
  drive(l2, 128, 128, 30'000, now, 7);
  l2.finalize(now);
  EXPECT_GT(l2.reconfig_writebacks(), 0u);
  EXPECT_GT(l2.energy().dram_nj, 0.0);
}

TEST(DynamicL2, AvgEnabledTracksLeakage) {
  DynamicPartitionedL2 l2(cfg());
  Cycle now = 0;
  drive(l2, 512, 512, 60'000, now);
  l2.finalize(now);
  const double frac =
      l2.avg_enabled_bytes() / static_cast<double>(l2.capacity_bytes());
  const TechParams full = make_sram(2ull << 20);
  const double full_leak = full.leakage_nj(now);
  EXPECT_NEAR(l2.energy().leakage_nj / full_leak, frac, 0.02);
}

TEST(DynamicL2, SttVariantRefreshesDirtyBlocks) {
  DynamicL2Config c = cfg(TechKind::SttRam);
  c.refresh = RefreshPolicy::ScrubDirty;
  DynamicPartitionedL2 l2(c);
  Cycle now = 0;
  // Dirty lines, then idle time past the retention period with sparse
  // traffic that triggers the refresher.
  for (std::uint64_t i = 0; i < 64; ++i) {
    l2.access(i * kLineSize, AccessType::Write, Mode::User, now);
    now += 10;
  }
  const Cycle ret = tech_constants::kRetentionLoCycles;
  for (int i = 1; i <= 8; ++i) {
    l2.access(kKernelSpaceBase, AccessType::Read, Mode::Kernel,
              static_cast<Cycle>(i) * ret / 2);
  }
  l2.finalize(5 * ret);
  EXPECT_GT(l2.aggregate_stats().refreshes, 0u);
  EXPECT_GT(l2.energy().refresh_nj, 0.0);
}

TEST(DynamicL2, DescribeNamesMonitorAndTech) {
  DynamicPartitionedL2 sram(cfg());
  EXPECT_NE(sram.describe().find("dynamic-partitioned"), std::string::npos);
  EXPECT_NE(sram.describe().find("SRAM"), std::string::npos);
  EXPECT_NE(sram.describe().find("shadow-utility"), std::string::npos);

  DynamicL2Config c = cfg(TechKind::SttRam);
  c.controller.monitor = MonitorKind::HillClimb;
  DynamicPartitionedL2 stt(c);
  EXPECT_NE(stt.describe().find("STT-RAM"), std::string::npos);
  EXPECT_NE(stt.describe().find("hill-climb"), std::string::npos);
}

TEST(DynamicL2, WritebacksAreNotDemandAccesses) {
  DynamicPartitionedL2 l2(cfg());
  // L1 castouts must not perturb the demand monitors' epoch counting.
  for (int i = 0; i < 100; ++i)
    l2.writeback(static_cast<Addr>(i) * kLineSize, Mode::User, i);
  EXPECT_EQ(l2.reconfigurations(), 0u);
  EXPECT_EQ(l2.aggregate_stats().total_accesses(), 100u);
}

}  // namespace
}  // namespace mobcache
