#include <gtest/gtest.h>

#include "common/env.hpp"
#include "core/scheme.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"
#include "workload/suite.hpp"

namespace mobcache {
namespace {

TEST(Workload, GeneratorHitsTargetLength) {
  const Trace t = generate_app_trace(AppId::Browser, 50'000, 1);
  EXPECT_GE(t.size(), 50'000u);
  EXPECT_LT(t.size(), 55'000u);  // at most one episode of overshoot headroom
}

TEST(Workload, DeterministicInSeed) {
  const Trace a = generate_app_trace(AppId::Game, 20'000, 7);
  const Trace b = generate_app_trace(AppId::Game, 20'000, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].addr, b[i].addr);
    ASSERT_EQ(a[i].type, b[i].type);
    ASSERT_EQ(a[i].mode, b[i].mode);
  }
}

TEST(Workload, SeedsProduceDifferentTraces) {
  const Trace a = generate_app_trace(AppId::Game, 20'000, 1);
  const Trace b = generate_app_trace(AppId::Game, 20'000, 2);
  std::size_t diff = 0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) diff += a[i].addr != b[i].addr;
  EXPECT_GT(diff, n / 4);
}

TEST(Workload, ModesConsistentWithAddressSpace) {
  for (AppId id : all_apps()) {
    const Trace t = generate_app_trace(id, 30'000, 3);
    EXPECT_TRUE(t.modes_consistent_with_addresses()) << app_name(id);
  }
}

TEST(Workload, InteractiveAppsMixBothModes) {
  for (AppId id : interactive_apps()) {
    const TraceSummary s = generate_app_trace(id, 100'000, 1).summarize();
    EXPECT_GT(s.kernel_fraction(), 0.05) << app_name(id);
    EXPECT_LT(s.kernel_fraction(), 0.60) << app_name(id);
    EXPECT_GT(s.writes, 0u) << app_name(id);
    EXPECT_GT(s.ifetches, s.total / 3) << app_name(id);
  }
}

TEST(Workload, ComputeAppsAreUserDominated) {
  for (AppId id : {AppId::ComputeFft, AppId::ComputeMatmul}) {
    const TraceSummary s = generate_app_trace(id, 100'000, 1).summarize();
    EXPECT_LT(s.kernel_fraction(), 0.05) << app_name(id);
  }
}

TEST(Workload, SuiteGeneratesAllRequestedApps) {
  const auto traces = generate_suite({AppId::Launcher, AppId::Email}, 10'000, 1);
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].name(), "launcher");
  EXPECT_EQ(traces[1].name(), "email");
}

TEST(Workload, AppSpecsWellFormed) {
  for (AppId id : all_apps()) {
    const AppSpec spec = make_app(id);
    EXPECT_EQ(spec.id, id);
    EXPECT_FALSE(spec.phases.empty()) << app_name(id);
    if (!spec.transitions.empty()) {
      ASSERT_EQ(spec.transitions.size(), spec.phases.size()) << app_name(id);
      for (const auto& row : spec.transitions)
        ASSERT_EQ(row.size(), spec.phases.size()) << app_name(id);
    }
    for (const PhaseSpec& p : spec.phases) {
      EXPECT_GT(p.ws_bytes, 0u);
      EXPECT_GT(p.mean_phase_len, 0u);
      EXPECT_GE(p.store_fraction, 0.0);
      EXPECT_LE(p.store_fraction, 1.0);
    }
  }
}

/// The paper's motivating observation, pinned as a regression band: in
/// interactive apps, kernel references make up >40% of *L2* accesses
/// (>35% asserted here to absorb seed noise at short trace lengths), while
/// compute workloads stay below 15%.
class KernelShareBand : public ::testing::TestWithParam<AppId> {};

TEST_P(KernelShareBand, L2KernelShareInBand) {
  const AppId id = GetParam();
  const Trace t = generate_app_trace(id, 400'000, 42);
  const SimResult r = simulate(t, build_scheme(SchemeKind::BaselineSram));
  const bool interactive = make_app(id).interactive;
  if (interactive) {
    EXPECT_GT(r.l2_kernel_fraction(), 0.35) << app_name(id);
    EXPECT_LT(r.l2_kernel_fraction(), 0.75) << app_name(id);
  } else {
    EXPECT_LT(r.l2_kernel_fraction(), 0.15) << app_name(id);
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, KernelShareBand,
                         ::testing::ValuesIn(all_apps()),
                         [](const auto& info) {
                           return std::string(app_name(info.param));
                         });

TEST(Workload, BenchTraceLenReadsEnvironment) {
  // No env var → fallback.
  unsetenv("MOBCACHE_TRACE_LEN");
  EXPECT_EQ(bench_trace_len(123), 123u);
  setenv("MOBCACHE_TRACE_LEN", "4567", 1);
  EXPECT_EQ(bench_trace_len(123), 4567u);
  // Unparsable values now fail loudly (common/env.hpp) instead of silently
  // running the fallback length under a typo'd override.
  setenv("MOBCACHE_TRACE_LEN", "garbage", 1);
  EXPECT_THROW(bench_trace_len(123), EnvError);
  unsetenv("MOBCACHE_TRACE_LEN");
}

}  // namespace
}  // namespace mobcache
