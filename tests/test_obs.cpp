/// \file test_obs.cpp
/// The observability subsystem: metric registry semantics, the epoch ring
/// buffer, the observer hub, export sinks, and — most importantly — the
/// guarantee that attaching telemetry never changes simulation results.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/dynamic_partitioned_l2.hpp"
#include "core/scheme.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_export.hpp"
#include "exp/runner.hpp"
#include "sim/simulator.hpp"
#include "workload/suite.hpp"

namespace mobcache {
namespace {

// ---------------------------------------------------------------- registry

TEST(MetricRegistry, HandlesAreStableAcrossInsertions) {
  MetricRegistry reg;
  Counter& a = reg.counter("a");
  a.add(1);
  // Force rebalancing-ish churn; std::map nodes must not move.
  for (int i = 0; i < 100; ++i) reg.counter("x" + std::to_string(i));
  a.add(1);
  EXPECT_EQ(reg.counter("a").value(), 2u);
}

TEST(MetricRegistry, MergeSemanticsPerKind) {
  MetricRegistry a, b;
  a.counter("c").add(3);
  b.counter("c").add(4);
  b.counter("only_b").add(1);

  a.gauge("g").set(1.0);
  b.gauge("g").set(2.0);
  b.gauge("unset");  // registered but never set: must not clobber

  a.stat("s").add(1.0);
  b.stat("s").add(3.0);

  a.histogram("h").add(1);
  b.histogram("h").add(1000);

  a.merge(b);
  EXPECT_EQ(a.counter("c").value(), 7u);
  EXPECT_EQ(a.counter("only_b").value(), 1u);
  EXPECT_DOUBLE_EQ(a.gauge("g").value(), 2.0);  // last-written wins
  EXPECT_EQ(a.stat("s").count(), 2u);
  EXPECT_DOUBLE_EQ(a.stat("s").mean(), 2.0);
  EXPECT_EQ(a.histogram("h").total(), 2u);

  MetricRegistry g1, g2;
  g1.gauge("g").set(5.0);
  g2.gauge("g");  // present, unset
  g1.merge(g2);
  EXPECT_DOUBLE_EQ(g1.gauge("g").value(), 5.0);
}

TEST(MetricRegistry, NullSafeHelpers) {
  inc(nullptr);
  set(nullptr, 1.0);
  observe(static_cast<RunningStat*>(nullptr), 1.0);
  observe(static_cast<Log2Histogram*>(nullptr), 1u);
  MetricRegistry reg;
  inc(&reg.counter("c"), 2);
  EXPECT_EQ(reg.counter("c").value(), 2u);
}

// -------------------------------------------------------------- ring buffer

TEST(EpochSeries, RingKeepsTailAndFlagsTruncation) {
  EpochSeries s(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    EpochSample e;
    e.epoch = i;
    s.push(e);
  }
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.total_pushed(), 10u);
  EXPECT_TRUE(s.truncated());
  for (std::size_t i = 0; i < s.size(); ++i)
    EXPECT_EQ(s.at(i).epoch, 6u + i) << "chronological tail expected";
  const auto snap = s.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().epoch, 6u);
  EXPECT_EQ(snap.back().epoch, 9u);
}

TEST(EpochSeries, BelowCapacityIsExact) {
  EpochSeries s(8);
  EpochSample e;
  e.epoch = 42;
  s.push(e);
  EXPECT_FALSE(s.truncated());
  EXPECT_EQ(s.at(0).epoch, 42u);
}

// ---------------------------------------------------------------------- hub

TEST(ObserverHub, MulticastsPerEventType) {
  ObserverHub hub;
  int resizes = 0, evictions = 0;
  hub.on_partition_resize([&](const PartitionResizeEvent&) { ++resizes; });
  hub.on_partition_resize([&](const PartitionResizeEvent&) { ++resizes; });
  EXPECT_FALSE(hub.wants_evictions());
  hub.on_eviction([&](const EvictionEvent&) { ++evictions; });
  EXPECT_TRUE(hub.wants_evictions());

  hub.emit(PartitionResizeEvent{});
  hub.emit(EvictionEvent{});
  hub.emit(RefreshBurstEvent{});  // no subscribers: no-op
  EXPECT_EQ(resizes, 2);
  EXPECT_EQ(evictions, 1);
}

// ---------------------------------------------------------- telemetry record

TEST(Telemetry, RecordUpdatesStandardMetrics) {
  Telemetry tel;
  tel.record(PartitionResizeEvent{100, 8, 8, 6, 4, 17});
  tel.record(DrowsyTransitionEvent{200, 32, 40});
  tel.record(RefreshBurstEvent{300, 5, 2, 1});
  tel.record(BypassDecisionEvent{400, 0x1000, Mode::User, true});
  tel.record(BypassDecisionEvent{500, 0x2000, Mode::User, false});
  EvictionEvent ev;
  ev.fill_cycle = 10;
  ev.evict_cycle = 1034;
  tel.record(ev);
  EpochSample s;
  s.epoch = 0;
  s.accesses = 10;
  s.misses = 5;
  tel.record(s);

  const MetricRegistry& m = tel.metrics();
  EXPECT_EQ(m.counters().at("l2.partition.resizes").value(), 1u);
  EXPECT_EQ(m.counters().at("l2.partition.flush_writebacks").value(), 17u);
  EXPECT_EQ(m.counters().at("l2.drowsy.wakeups").value(), 40u);
  EXPECT_EQ(m.counters().at("l2.refresh.scrubbed").value(), 5u);
  EXPECT_EQ(m.counters().at("l2.bypass.decisions").value(), 2u);
  EXPECT_EQ(m.counters().at("l2.bypass.bypassed").value(), 1u);
  EXPECT_EQ(m.counters().at("l2.evictions").value(), 1u);
  EXPECT_EQ(m.histograms().at("l2.block.residency_cycles").total(), 1u);
  EXPECT_EQ(m.counters().at("l2.epochs").value(), 1u);
  EXPECT_DOUBLE_EQ(m.stats().at("l2.epoch.miss_rate").mean(), 0.5);
  ASSERT_EQ(tel.epochs().size(), 1u);
  EXPECT_EQ(tel.epochs().at(0).misses, 5u);
}

// ------------------------------------------------------------- export sinks

TEST(TraceExport, ParseFormatAliases) {
  EXPECT_EQ(parse_trace_format("jsonl"), TraceFormat::Jsonl);
  EXPECT_EQ(parse_trace_format("json"), TraceFormat::Jsonl);
  EXPECT_EQ(parse_trace_format("chrome"), TraceFormat::ChromeTrace);
  EXPECT_EQ(parse_trace_format("perfetto"), TraceFormat::ChromeTrace);
  EXPECT_EQ(parse_trace_format("bogus"), std::nullopt);
}

TEST(TraceExport, JsonlOneSelfDescribingObjectPerEvent) {
  Telemetry tel;
  tel.set_context("wl", "scheme");
  TraceSink sink(TraceFormat::Jsonl);
  sink.attach(tel);
  tel.record(PartitionResizeEvent{123, 8, 8, 10, 4, 0});
  tel.record(RefreshBurstEvent{456, 3, 0, 0});
  EXPECT_EQ(sink.event_count(), 2u);

  const std::string out = sink.render();
  // Two newline-terminated lines, each a flat object.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
  EXPECT_NE(out.find("{\"type\":\"partition-resize\",\"cycle\":123,"
                     "\"track\":\"wl/scheme\""),
            std::string::npos);
  EXPECT_NE(out.find("\"new_user_ways\":10"), std::string::npos);
  EXPECT_NE(out.find("\"type\":\"refresh-burst\""), std::string::npos);
}

TEST(TraceExport, ChromeTraceStructureAndTimestamps) {
  Telemetry tel;
  tel.set_context("wl", "s1");
  TraceSink sink(TraceFormat::ChromeTrace);
  sink.attach(tel);
  tel.record(PartitionResizeEvent{2'000, 8, 8, 6, 4, 0});
  EpochSample s;
  s.cycle = 4'000;
  s.user_ways = 6;
  s.kernel_ways = 4;
  tel.record(s);

  const std::string out = sink.render();
  EXPECT_EQ(out.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), 0u);
  // Track metadata names the workload/scheme run.
  EXPECT_NE(out.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"wl/s1\""), std::string::npos);
  // 2000 cycles at 1 GHz = 2 us; instants are process-scoped.
  EXPECT_NE(out.find("\"ph\":\"i\",\"ts\":2"), std::string::npos);
  EXPECT_NE(out.find("\"s\":\"p\""), std::string::npos);
  // Epoch samples become counter tracks.
  EXPECT_NE(out.find("\"name\":\"l2.ways\",\"ph\":\"C\",\"ts\":4"),
            std::string::npos);
  EXPECT_NE(out.find("\"user\":6"), std::string::npos);
}

TEST(TraceExport, EvictionsAreOptIn) {
  Telemetry tel;
  TraceSink quiet(TraceFormat::Jsonl);
  quiet.attach(tel);
  TraceSinkOptions verbose_opts;
  verbose_opts.include_evictions = true;
  TraceSink verbose(TraceFormat::Jsonl, verbose_opts);
  verbose.attach(tel);

  tel.record(EvictionEvent{});
  EXPECT_EQ(quiet.event_count(), 0u);
  EXPECT_EQ(verbose.event_count(), 1u);
}

TEST(TraceExport, MetricsJsonIncludesAllKinds) {
  Telemetry tel;
  tel.set_context("w", "s");
  tel.metrics().counter("c").add(9);
  tel.metrics().gauge("g").set(1.5);
  tel.metrics().stat("st").add(2.0);
  tel.metrics().histogram("h").add(5);
  EpochSample s;
  s.epoch = 1;
  tel.epochs().push(s);

  const std::string out = telemetry_to_json(tel);
  EXPECT_NE(out.find("\"workload\":\"w\""), std::string::npos);
  EXPECT_NE(out.find("\"c\":9"), std::string::npos);
  EXPECT_NE(out.find("\"g\":1.5"), std::string::npos);
  EXPECT_NE(out.find("\"mean\":2"), std::string::npos);
  EXPECT_NE(out.find("\"log2_buckets\""), std::string::npos);
  EXPECT_NE(out.find("\"total_epochs\":1"), std::string::npos);
  EXPECT_NE(out.find("\"truncated\":false"), std::string::npos);
}

// ----------------------------------------------- end-to-end sim guarantees

SimResult run_browser(SchemeKind kind, Telemetry* tel,
                      std::uint64_t sample_interval = 0) {
  const Trace t = generate_app_trace(AppId::Browser, 120'000, 7);
  SimOptions opts;
  if (tel != nullptr) {
    tel->set_sample_interval(sample_interval);
    opts.telemetry = tel;
  }
  return simulate(t, build_scheme(kind), opts);
}

/// The acceptance bar: attaching a full observability session must not
/// perturb the simulation. Every result field — including the
/// floating-point energy accumulators — must be bit-identical.
void expect_bit_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.records, b.records);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.cpi, b.cpi);
  EXPECT_EQ(a.l2.total_accesses(), b.l2.total_accesses());
  EXPECT_EQ(a.l2.total_hits(), b.l2.total_hits());
  EXPECT_EQ(a.l2.evictions, b.l2.evictions);
  EXPECT_EQ(a.l2_energy.leakage_nj, b.l2_energy.leakage_nj);
  EXPECT_EQ(a.l2_energy.read_nj, b.l2_energy.read_nj);
  EXPECT_EQ(a.l2_energy.write_nj, b.l2_energy.write_nj);
  EXPECT_EQ(a.l2_energy.refresh_nj, b.l2_energy.refresh_nj);
  EXPECT_EQ(a.l2_energy.dram_nj, b.l2_energy.dram_nj);
  EXPECT_EQ(a.l2_avg_enabled_bytes, b.l2_avg_enabled_bytes);
  EXPECT_EQ(a.stall_l2_hit_cycles, b.stall_l2_hit_cycles);
  EXPECT_EQ(a.stall_l2_miss_cycles, b.stall_l2_miss_cycles);
}

TEST(ObsEndToEnd, NoSinkPathIsBitIdentical) {
  for (SchemeKind k : {SchemeKind::BaselineSram, SchemeKind::DynamicStt,
                       SchemeKind::StaticPartMrstt}) {
    const SimResult plain = run_browser(k, nullptr);
    Telemetry tel;
    const SimResult observed = run_browser(k, &tel, 10'000);
    expect_bit_identical(plain, observed);
    EXPECT_FALSE(tel.metrics().empty()) << scheme_name(k);
  }
}

TEST(ObsEndToEnd, DynamicEpochSeriesMatchesAllocationHistory) {
  // The telemetry epoch series must reproduce the E8 way-allocation
  // trajectory the scheme itself records.
  const Trace t = generate_app_trace(AppId::Browser, 150'000, 11);
  DynamicL2Config cfg;
  cfg.cache.name = "L2";
  cfg.cache.size_bytes = 2ull << 20;
  cfg.cache.assoc = 16;
  cfg.epoch_accesses = 5'000;
  DynamicPartitionedL2 l2(cfg);
  Telemetry tel;
  SimOptions opts;
  opts.telemetry = &tel;
  simulate(t, l2, opts);

  const auto& hist = l2.allocation_history();
  const EpochSeries& series = tel.epochs();
  ASSERT_GT(series.size(), 0u);

  // Walk the epoch samples; at each sample's cycle, the scheme's recorded
  // allocation (last history entry at or before that cycle) must match.
  for (std::size_t i = 0; i < series.size(); ++i) {
    const EpochSample& s = series.at(i);
    std::uint32_t user = 8, kernel = 8;  // controller's initial split
    for (const AllocationSample& h : hist) {
      if (h.cycle > s.cycle) break;
      user = h.user_ways;
      kernel = h.kernel_ways;
    }
    EXPECT_EQ(s.user_ways, user) << "epoch " << s.epoch;
    EXPECT_EQ(s.kernel_ways, kernel) << "epoch " << s.epoch;
  }
  // And the resize events must line up 1:1 with the history.
  EXPECT_EQ(tel.metrics().counters().at("l2.partition.resizes").value(),
            hist.size());
}

TEST(ObsEndToEnd, LegacyObserverAndHubSeeIdenticalEvictionStreams) {
  // The shrunk 512 KB scheme overflows on the browser working set, so the
  // run actually evicts (the 2 MB baseline often never does).
  const Trace t = generate_app_trace(AppId::Browser, 120'000, 3);

  std::vector<EvictionEvent> via_legacy;
  {
    SimOptions opts;
    opts.l2_eviction_observer = [&](const EvictionEvent& e) {
      via_legacy.push_back(e);
    };
    simulate(t, build_scheme(SchemeKind::ShrunkSram), opts);
  }

  std::vector<EvictionEvent> via_hub;
  {
    Telemetry tel;
    tel.hub().on_eviction(
        [&](const EvictionEvent& e) { via_hub.push_back(e); });
    SimOptions opts;
    opts.telemetry = &tel;
    simulate(t, build_scheme(SchemeKind::ShrunkSram), opts);
  }

  ASSERT_EQ(via_legacy.size(), via_hub.size());
  ASSERT_FALSE(via_legacy.empty());
  for (std::size_t i = 0; i < via_legacy.size(); ++i) {
    EXPECT_EQ(via_legacy[i].line, via_hub[i].line);
    EXPECT_EQ(via_legacy[i].evict_cycle, via_hub[i].evict_cycle);
    EXPECT_EQ(via_legacy[i].fill_cycle, via_hub[i].fill_cycle);
    EXPECT_EQ(via_legacy[i].owner, via_hub[i].owner);
    EXPECT_EQ(via_legacy[i].dirty, via_hub[i].dirty);
  }
}

TEST(ObsEndToEnd, BothPathsTogetherMulticast) {
  // The deprecated shim and the hub must coexist: both receive every event.
  const Trace t = generate_app_trace(AppId::Browser, 120'000, 3);
  std::uint64_t legacy_count = 0;
  std::vector<EvictionEvent> via_hub;
  Telemetry tel;
  tel.hub().on_eviction([&](const EvictionEvent& e) { via_hub.push_back(e); });
  SimOptions opts;
  opts.l2_eviction_observer = [&](const EvictionEvent&) { ++legacy_count; };
  opts.telemetry = &tel;
  simulate(t, build_scheme(SchemeKind::ShrunkSram), opts);

  EXPECT_GT(legacy_count, 0u);
  EXPECT_EQ(legacy_count, via_hub.size());
  EXPECT_EQ(legacy_count,
            tel.metrics().counters().at("l2.evictions").value());
}

TEST(ObsEndToEnd, RunnerCollectsAndMergesTelemetry) {
  ExperimentRunner runner({AppId::Browser, AppId::Launcher}, 60'000, 5);
  runner.collect_telemetry = true;
  runner.telemetry_sample_interval = 10'000;
  const SchemeSuiteResult r = runner.run_scheme(SchemeKind::DynamicStt);

  ASSERT_EQ(r.per_workload_telemetry.size(), 2u);
  for (const auto& tel : r.per_workload_telemetry) {
    ASSERT_TRUE(tel);
    EXPECT_FALSE(tel->metrics().empty());
    EXPECT_GT(tel->epochs().size(), 0u);
  }
  const MetricRegistry merged = r.merged_metrics();
  const std::uint64_t merged_epochs = merged.counters().at("l2.epochs").value();
  std::uint64_t sum = 0;
  for (const auto& tel : r.per_workload_telemetry)
    sum += tel->metrics().counters().at("l2.epochs").value();
  EXPECT_EQ(merged_epochs, sum);

  // Telemetry off by default: no sessions, empty merged registry.
  ExperimentRunner plain({AppId::Browser}, 30'000, 5);
  const SchemeSuiteResult p = plain.run_scheme(SchemeKind::BaselineSram);
  EXPECT_TRUE(p.per_workload_telemetry.empty());
  EXPECT_TRUE(p.merged_metrics().empty());
}

}  // namespace
}  // namespace mobcache
