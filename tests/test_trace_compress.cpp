#include "trace/trace_compress.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include <unistd.h>

#include "trace/trace_io.hpp"
#include "workload/suite.hpp"

namespace mobcache {
namespace {

class TraceCompressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-process dir: under `ctest -j` every test case is a separate
    // process, and a shared fixed path would let one TearDown remove_all
    // race another process's writes.
    dir_ = std::filesystem::temp_directory_path() /
           ("mobcache_mctz_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const char* n) const { return (dir_ / n).string(); }
  std::filesystem::path dir_;
};

TEST_F(TraceCompressTest, RoundtripIsExact) {
  const Trace original = generate_app_trace(AppId::Browser, 50'000, 3);
  ASSERT_TRUE(write_trace_compressed(original, path("t.mctz")));
  const auto loaded = read_trace_compressed(path("t.mctz"));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->name(), original.name());
  ASSERT_EQ(loaded->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    ASSERT_EQ((*loaded)[i].addr, original[i].addr) << i;
    ASSERT_EQ((*loaded)[i].type, original[i].type) << i;
    ASSERT_EQ((*loaded)[i].mode, original[i].mode) << i;
    ASSERT_EQ((*loaded)[i].thread, original[i].thread) << i;
  }
}

TEST_F(TraceCompressTest, CompressesRealTracesWell) {
  const Trace t = generate_app_trace(AppId::VideoPlayer, 100'000, 3);
  ASSERT_TRUE(write_trace(t, path("flat.mct")));
  ASSERT_TRUE(write_trace_compressed(t, path("z.mctz")));
  const auto flat = std::filesystem::file_size(path("flat.mct"));
  const auto comp = std::filesystem::file_size(path("z.mctz"));
  EXPECT_LT(static_cast<double>(comp), static_cast<double>(flat) / 4.0)
      << "expected at least 4x compression on a strided workload";
}

TEST_F(TraceCompressTest, EmptyTrace) {
  Trace t("nothing");
  ASSERT_TRUE(write_trace_compressed(t, path("e.mctz")));
  const auto loaded = read_trace_compressed(path("e.mctz"));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->empty());
  EXPECT_EQ(loaded->name(), "nothing");
}

TEST_F(TraceCompressTest, RejectsFlatFormatMagic) {
  const Trace t = generate_app_trace(AppId::Launcher, 1'000, 3);
  ASSERT_TRUE(write_trace(t, path("flat.mct")));
  EXPECT_FALSE(read_trace_compressed(path("flat.mct")).has_value());
}

TEST_F(TraceCompressTest, RejectsTruncation) {
  const Trace t = generate_app_trace(AppId::Launcher, 5'000, 3);
  ASSERT_TRUE(write_trace_compressed(t, path("t.mctz")));
  const auto full = std::filesystem::file_size(path("t.mctz"));
  std::filesystem::resize_file(path("t.mctz"), full - 5);
  EXPECT_FALSE(read_trace_compressed(path("t.mctz")).has_value());
}

TEST_F(TraceCompressTest, RejectsTrailingGarbage) {
  const Trace t = generate_app_trace(AppId::Launcher, 1'000, 3);
  ASSERT_TRUE(write_trace_compressed(t, path("t.mctz")));
  {
    std::ofstream f(path("t.mctz"), std::ios::binary | std::ios::app);
    f << "extra";
  }
  // Header body_len no longer matches the payload scan end... the extra
  // bytes are beyond body_len, so the reader still consumes exactly
  // body_len and succeeds; corrupt the body length itself instead.
  std::fstream f(path("t.mctz"),
                 std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(8 + 4 + static_cast<std::streamoff>(t.name().size()) + 8);
  const std::uint64_t bogus = 3;
  f.write(reinterpret_cast<const char*>(&bogus), sizeof bogus);
  f.close();
  EXPECT_FALSE(read_trace_compressed(path("t.mctz")).has_value());
}

TEST_F(TraceCompressTest, ReadAnyDispatchesOnMagic) {
  const Trace t = generate_app_trace(AppId::Email, 2'000, 3);
  ASSERT_TRUE(write_trace(t, path("a.mct")));
  ASSERT_TRUE(write_trace_compressed(t, path("a.mctz")));
  const auto flat = read_trace_any(path("a.mct"));
  const auto comp = read_trace_any(path("a.mctz"));
  ASSERT_TRUE(flat.has_value());
  ASSERT_TRUE(comp.has_value());
  EXPECT_EQ(flat->size(), comp->size());
  EXPECT_FALSE(read_trace_any(path("missing.mctz")).has_value());
}

TEST_F(TraceCompressTest, MixedThreadsAndModesSurvive) {
  Trace t("threads");
  for (int i = 0; i < 1000; ++i) {
    Access a;
    a.mode = i % 3 == 0 ? Mode::Kernel : Mode::User;
    a.addr = (a.mode == Mode::Kernel ? kKernelSpaceBase : 0) +
             static_cast<Addr>((i * 37) % 997) * kLineSize;
    a.type = static_cast<AccessType>(i % 3);
    a.thread = static_cast<std::uint16_t>(i % 5);
    t.push(a);
  }
  ASSERT_TRUE(write_trace_compressed(t, path("m.mctz")));
  const auto loaded = read_trace_compressed(path("m.mctz"));
  ASSERT_TRUE(loaded.has_value());
  for (std::size_t i = 0; i < t.size(); ++i) {
    ASSERT_EQ((*loaded)[i].thread, t[i].thread) << i;
    ASSERT_EQ((*loaded)[i].addr, t[i].addr) << i;
  }
}

TEST_F(TraceCompressTest, AnyDetailedSniffsBothFormats) {
  const Trace t = generate_app_trace(AppId::Browser, 5'000, 3);
  ASSERT_TRUE(write_trace(t, path("s.mct")));
  ASSERT_TRUE(write_trace_compressed(t, path("s.mctz")));
  EXPECT_TRUE(read_trace_any_detailed(path("s.mct")).ok());
  EXPECT_TRUE(read_trace_any_detailed(path("s.mctz")).ok());

  EXPECT_EQ(read_trace_any_detailed(path("missing.mctz")).status,
            TraceIoStatus::FileNotFound);

  std::ofstream junk(path("j.mct"), std::ios::binary);
  const char garbage[32] = "neither format's magic header";
  junk.write(garbage, sizeof garbage);
  junk.close();
  EXPECT_EQ(read_trace_any_detailed(path("j.mct")).status,
            TraceIoStatus::BadMagic);

  std::ofstream tiny(path("tiny.mct"), std::ios::binary);
  tiny.write("abc", 3);
  tiny.close();
  EXPECT_EQ(read_trace_any_detailed(path("tiny.mct")).status,
            TraceIoStatus::CorruptHeader);
}

TEST_F(TraceCompressTest, CompressedDetailedClassifiesTruncation) {
  const Trace t = generate_app_trace(AppId::Browser, 5'000, 3);
  ASSERT_TRUE(write_trace_compressed(t, path("tr.mctz")));
  const auto full = std::filesystem::file_size(path("tr.mctz"));
  std::filesystem::resize_file(path("tr.mctz"), full - 16);
  const TraceReadResult r = read_trace_compressed_detailed(path("tr.mctz"));
  EXPECT_EQ(r.status, TraceIoStatus::TruncatedRecords);
  EXPECT_FALSE(r.detail.empty());
}

}  // namespace
}  // namespace mobcache

