#include "cache/bank_model.hpp"

#include <gtest/gtest.h>

namespace mobcache {
namespace {

constexpr Cycle kWl = 40;  // write latency used throughout

TEST(BankModel, IdleBankHasNoStall) {
  BankModel b;
  EXPECT_EQ(b.read_stall(0, 100, kWl), 0u);
  EXPECT_EQ(b.queue_depth(0, 100, kWl), 0u);
}

TEST(BankModel, ReadWaitsOutInFlightWriteOnly) {
  BankModel b;
  b.write_enqueue(0, 100, kWl);  // busy until 140
  EXPECT_EQ(b.read_stall(0, 110, kWl), 30u);
  EXPECT_EQ(b.read_stall(0, 139, kWl), 1u);
  EXPECT_EQ(b.read_stall(0, 140, kWl), 0u);
}

TEST(BankModel, QueuedWritesDoNotDelayReadsBeyondOneSlot) {
  BankModel b;
  for (int i = 0; i < 3; ++i) b.write_enqueue(0, 100, kWl);  // 3 queued
  EXPECT_EQ(b.queue_depth(0, 100, kWl), 3u);
  // A read at 110 waits only for the first write (ends 140), not all three.
  EXPECT_EQ(b.read_stall(0, 110, kWl), 30u);
  // Mid-second-write: remaining of that write only.
  EXPECT_EQ(b.read_stall(0, 150, kWl), 30u);
}

TEST(BankModel, WritesPostedWhileQueueHasRoom) {
  BankModel b(4, /*queue_depth=*/2);
  EXPECT_EQ(b.write_enqueue(0, 100, kWl), 0u);
  EXPECT_EQ(b.write_enqueue(0, 100, kWl), 0u);  // fills the queue
}

TEST(BankModel, FullQueueBackpressuresWriter) {
  BankModel b(4, /*queue_depth=*/2);
  b.write_enqueue(0, 100, kWl);
  b.write_enqueue(0, 100, kWl);  // queue now at capacity (until 180)
  // Third write at 100 must wait for the first slot to drain (40 cycles).
  EXPECT_EQ(b.write_enqueue(0, 100, kWl), 40u);
}

TEST(BankModel, BanksAreIndependent) {
  BankModel b(4, 2);
  b.write_enqueue(0 * kLineSize, 100, kWl);
  EXPECT_EQ(b.read_stall(1 * kLineSize, 110, kWl), 0u);
  EXPECT_EQ(b.read_stall(0 * kLineSize, 110, kWl), 30u);
  // Lines 4 lines apart share a bank (4-bank interleave).
  EXPECT_EQ(b.read_stall(4 * kLineSize, 110, kWl), 30u);
}

TEST(BankModel, DrainsCompletely) {
  BankModel b(4, 4);
  for (int i = 0; i < 4; ++i) b.write_enqueue(0, 100, kWl);
  EXPECT_EQ(b.queue_depth(0, 100 + 4 * kWl, kWl), 0u);
  EXPECT_EQ(b.read_stall(0, 100 + 4 * kWl, kWl), 0u);
}

TEST(BankModel, ZeroWriteLatencyIsFree) {
  BankModel b;
  EXPECT_EQ(b.write_enqueue(0, 50, 0), 0u);
  EXPECT_EQ(b.read_stall(0, 50, 0), 0u);
}

TEST(BankModel, StaggeredWritesAccumulate) {
  BankModel b(4, 8);
  b.write_enqueue(0, 100, kWl);          // until 140
  b.write_enqueue(0, 120, kWl);          // until 180
  EXPECT_EQ(b.queue_depth(0, 120, kWl), 2u);
  b.write_enqueue(0, 200, kWl);          // bank idle again → until 240
  EXPECT_EQ(b.queue_depth(0, 200, kWl), 1u);
}

}  // namespace
}  // namespace mobcache
